(** Schedules: the adversary's complete description of one run.

    A schedule fixes, for every round, which processes crash and what happens
    to every message sent in that round (delivered in the same round, delayed
    until a later round, or lost). Together with the processes' proposal
    values it determines a run of a deterministic algorithm completely, which
    is what makes the engine, the property tests and the model checker
    reproducible.

    Rounds beyond the {!horizon} are implicitly failure-free and synchronous:
    every remaining message is delivered in its send round. A finite schedule
    therefore describes an infinite run, matching the model's requirement
    that asynchrony and crashes are finite phenomena.

    {!validate} checks the schedule against every constraint of Section 1.2
    for the chosen model (SCS or ES); generators in [Workload] produce valid
    schedules by construction, and the property tests check that. *)

open Kernel

type fate =
  | Same_round  (** delivered in the round it was sent *)
  | Delayed_until of Round.t  (** received in a strictly later round *)
  | Lost  (** never received *)

type plan = {
  crashes : Pid.t list;
      (** processes crashing in this round; they send their round message
          (subject to [lost]/[delayed] below) but do not complete the round
          and take no further part in the run. A victim all of whose messages
          are [lost] crashed "before sending". *)
  lost : (Pid.t * Pid.t) list;
      (** [(src, dst)]: the message sent by [src] in this round to [dst] is
          lost. *)
  delayed : (Pid.t * Pid.t * Round.t) list;
      (** [(src, dst, r)]: the message sent by [src] in this round to [dst]
          is received in round [r]. *)
}

val empty_plan : plan

type t

val make :
  ?omitters:(Pid.t * Model.omission) list ->
  ?budget:Model.budget ->
  model:Model.t ->
  gst:Round.t ->
  plan list ->
  t
(** [make ~model ~gst plans] is the schedule whose round [k] follows
    [List.nth plans (k-1)] (and {!empty_plan} past the end). [gst] is the
    round [K] of eventual synchrony; it must be 1 for SCS.

    [omitters] declares the run's omission-faulty processes and their
    class; a declaration {e licenses} [lost] entries on the faulty side
    (outgoing for {!Model.Send_omit}, incoming for {!Model.Recv_omit}) in
    any round without breaking synchrony — the plans still spell out
    exactly which messages drop, so the engine needs no new machinery.
    Duplicate declarations for a pid keep the last one. [budget] is the
    optional explicit adversary budget [(t_crash, t_omit)] checked by
    {!validate}; without it the soundness rule falls back to
    [|crashed ∪ omitters| <= t]. *)

val model : t -> Model.t

val gst : t -> Round.t
(** The round [K] from which eventual synchrony holds. *)

val effective_gst : t -> Round.t
(** The {e minimal} round [K] such that every round [k >= K] satisfies the
    synchrony clauses (only messages sent in their sender's crash round, or
    dropped by a declared omitter, may be lost; only crash-round messages
    may be delayed). A schedule may declare a larger {!gst} than it uses;
    the run's synchrony class is defined by this minimal value. *)

val synchronous : t -> bool
(** [effective_gst s = 1]: the paper's definition of a synchronous run. *)

val synchronous_after : t -> Round.t -> bool
(** [synchronous_after s k]: the run is synchronous after round [k]
    (Section 6), i.e. [effective_gst s <= k + 1]. *)

val horizon : t -> int
(** Number of rounds with an explicit plan. *)

val plan_at : t -> Round.t -> plan

val plans : t -> plan list

val crash_round : t -> Pid.t -> Round.t option
(** The round in which a process crashes, if it is faulty. *)

val faulty : t -> Pid.Set.t
(** Crash victims only; omitters are reported by {!omitter_set}. *)

val crash_count : t -> int

val omitters : t -> (Pid.t * Model.omission) list
(** Declared omission-faulty processes, ascending by pid. *)

val omitter_class : t -> Pid.t -> Model.omission option
val omitter_set : t -> Pid.Set.t
val send_omitters : t -> Pid.Set.t
val recv_omitters : t -> Pid.Set.t
val omit_count : t -> int

val budget : t -> Model.budget option
(** The explicit adversary budget, when one was declared at {!make}. *)

val omission_justified : t -> src:Pid.t -> dst:Pid.t -> bool
(** The message [src -> dst] sits on the faulty side of a declared
    omitter: [src] is a send-omitter or [dst] is a receive-omitter. Such
    losses are legal in every round of every model and do not count
    against {!effective_gst}. *)

val crashes_after : t -> Round.t -> int
(** Number of crashes occurring in rounds strictly greater than the given
    round — the [f] of the fast-eventual-decision property (Section 6). *)

val fate : t -> src:Pid.t -> dst:Pid.t -> round:Round.t -> fate
(** What happens to the message sent by [src] to [dst] in [round] (assuming
    [src] is alive to send it). *)

type compiled_fates =
  | Quiet  (** no losses or delays: every fate is [Same_round] *)
  | Single_lost of { sl_src : int; sl_dsts : Kernel.Bitset.Big.t }
      (** one sender's messages lost to a destination set, nothing
          delayed — the shape of every serial-adversary crash and
          send-omission plan *)
  | Single_dst of { sd_dst : int; sd_srcs : Kernel.Bitset.Big.t }
      (** one receiver loses messages from a source set, nothing
          delayed — the shape of every serial-adversary receive-omission
          plan *)
  | Table of fate array
      (** general case, indexed by [(src - 1) * n + (dst - 1)] *)

type compiled_plan
(** A {!plan} precompiled into an O(1) per-[(src, dst)] fate lookup — the
    engine routes [n * n] copies per round, so the checker hot path must
    not scan [plan.lost]/[plan.delayed] lists per copy. Quiet plans (no
    losses or delays — the overwhelmingly common case in sweeps) compile
    to a zero-allocation representation. *)

val compile_plan : n:int -> plan -> compiled_plan
(** Compile one round plan for an [n]-process system. O(n^2) once in the
    general case, O(1) per {!compiled_fate} query afterwards; O(1) and
    allocation-free for quiet plans, and O(lost) — no [n * n] table — for
    plans whose only disruptions are one sender's messages being lost
    (every serial-adversary crash and send-omission plan has this shape:
    the victim's round-[k] messages miss a subset of the survivors) or
    one receiver's messages being lost (every serial-adversary
    receive-omission plan). *)

val compiled_empty_plan : compiled_plan
(** {!empty_plan}, compiled; valid for any [n]. *)

val compiled_source : compiled_plan -> plan
(** The plan it was compiled from (crash list, original fate lists). *)

val compiled_fates : compiled_plan -> compiled_fates
(** The stored compiled shape, returned without allocating — the arena
    engine's round dispatch matches on this directly so the quiet path
    stays allocation-free. *)

val compiled_quiet : compiled_plan -> bool
(** No losses and no delays: every fate is [Same_round]. *)

val compiled_fate : compiled_plan -> src:Pid.t -> dst:Pid.t -> fate
(** O(1). Only meaningful for [src <> dst] with both in [p1..pn] — the
    engine never consults the fate of a self-delivery. *)

val compiled_single_lost : compiled_plan -> (Pid.t * Kernel.Bitset.Big.t) option
(** [Some (src, dsts)] when the plan's only disruptions are messages from
    [src] lost to the destinations [dsts] (no delays): the engine's
    receive-phase fast path then builds two shared inboxes — with and
    without [src]'s envelope — instead of querying a fate per copy. The
    destination set is array-backed ({!Kernel.Bitset.Big}), so the fast
    path applies at any [n]. *)

val failure_free_synchronous : t -> bool

val validate : Config.t -> t -> (unit, string) result
(** Checks every model constraint:
    - crash-stop: each victim crashes at most once, at most [t] crashes, and
      no fate references a {e sender} already crashed in an earlier round
      (entries towards an already-crashed receiver are moot and tolerated);
    - self-delivery: a process always receives its own message in the same
      round (assumption 2 of Section 3: no process ever suspects itself);
    - reliable channels: a message is [Lost] only when its sender is faulty,
      and (for ES) only in the sender's crash round or before [gst]; in SCS
      only in the sender's crash round; in every model a loss is also legal
      when justified by a declared omitter ({!omission_justified});
    - adversary budget: with an explicit budget, [t_crash + t_omit <= t],
      at most [t_crash] crashes and at most [t_omit] omitters; without
      one, at most [t] distinct faulty processes (crashed or omitting);
    - t-resilience is not demanded {e of} omitter receivers (a starved
      receive-omitter stays inside the model);
    - eventual synchrony: from round [gst] on, only messages sent in their
      sender's crash round may be delayed ([Delayed_until]) — footnote 5; in
      SCS nothing is ever delayed;
    - delays go strictly forward in time;
    - t-resilience (ES): every process alive at the end of round [k] receives
      round-[k] messages from at least [n - t] processes;
    - bounds: every pid in [1..n], [Delayed_until] targets within sanity
      bounds. *)

val validate_exn : Config.t -> t -> unit
(** Like {!validate} but raises [Invalid_argument]. *)

val pp : Format.formatter -> t -> unit
(** Compact human-readable rendering (used in counterexample reports). *)
