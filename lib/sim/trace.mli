(** The observable outcome of one simulated run. *)

open Kernel

type decision = { pid : Pid.t; round : Round.t; value : Value.t }

type round_record = {
  round : Round.t;
  senders : Pid.t list;  (** processes that sent a message this round *)
  crashed_now : Pid.t list;
  delivered : (Pid.t * Pid.t * Round.t) list;
      (** [(src, dst, sent)] for every envelope delivered this round *)
  bytes_sent : int;
      (** estimated bytes put on the wire this round: per sender,
          [n] copies of (header + payload size) *)
  new_decisions : decision list;
}

type t = {
  algorithm : string;
  config : Config.t;
  proposals : Value.t Pid.Map.t;
  schedule : Schedule.t;
  decisions : decision list;  (** in deciding order, one per process *)
  crashes : (Pid.t * Round.t) list;
  rounds_executed : int;
  all_halted : bool;
      (** every non-crashed process returned before [rounds_executed] ran
          out; [false] means the run hit the round bound *)
  records : round_record list;  (** chronological; empty unless requested *)
}

val decision_of : t -> Pid.t -> decision option
val decided_values : t -> Value.t list

val global_decision_round : t -> Round.t option
(** Section 1.3: the run achieves a global decision at round [k] when every
    process that ever decides does so at round [<= k] and some process
    decides at [k]; i.e. the maximum decision round. [None] when nobody
    decided. *)

val first_decision_round : t -> Round.t option

val correct : t -> Pid.t list
(** Processes that are fault-free in this run: they never crash and are
    not declared omission-faulty in the schedule. *)

val pp_summary : Format.formatter -> t -> unit

val pp_diagram : Format.formatter -> t -> unit
(** Fig.-1-style ASCII space/time diagram: one row per process, one column
    per round, showing crashes ([X]), decisions ([D=v]), halts ([h]) and
    off-schedule message fates. The [*]/[h] cells need {!t.records}; on a
    record-free trace those cells render as [?] with an explanatory note
    instead of a misleading [*]. *)
