(** The two round-based models of Section 1.2.

    {b SCS} — the synchronous crash-stop model: if [p_i] crashes in round [k],
    any subset of its round-[k] messages may be lost and the rest are received
    in round [k]; messages from non-crashed processes are received in the
    round they were sent. No message is ever delayed.

    {b ES} — the eventually synchronous model: runs may be "asynchronous" for
    an arbitrary yet finite number of rounds and then become synchronous.
    Every run satisfies (i) t-resilience: every process completing round [k]
    receives round-[k] messages from at least [n - t] processes, (ii) reliable
    channels: correct-to-correct messages are never lost but may be delayed,
    and (iii) eventual synchrony: there is an unknown finite round [K] (the
    schedule's [gst]) from which rounds behave synchronously. A run is
    {e synchronous} when [K = 1]; per footnote 5, even then messages sent by a
    process in its crash round may be delayed arbitrarily rather than lost. *)

type t =
  | Scs
  | Es
  | Dls_basic
      (** The fail-stop {e basic round model} of Dwork, Lynch and Stockmeyer
          (Sections 3.1/3.2.1 of [6]), which the paper's Section 1.4 notes
          is exactly the variant of ES without the t-resilience property in
          which all delayed messages are lost: before the (unknown, finite)
          global stabilisation round any message may simply be lost; from
          that round on, rounds behave synchronously. The lower-bound proof
          simplifies trivially to this model, which {!Mc.Attack.solo_split_dls}
          demonstrates. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Fault classes beyond crash-stop}

    The fault-model hierarchy is crash ⊂ omission ⊂ Byzantine (DESIGN
    §13): a crash is an omission fault that drops {e every} message from
    its crash round on, and an omission fault is a Byzantine fault that
    happens to follow the protocol on the messages it does deliver. An
    omission-faulty process keeps executing its automaton — it may even
    decide — but the adversary selectively drops messages on one side of
    it without the process ever knowing. *)

type omission =
  | Send_omit  (** outgoing messages may be dropped (the culprit sends
                   into the void); incoming delivery is unaffected *)
  | Recv_omit  (** incoming messages may be dropped (the culprit hears
                   only a subset); its own sends are unaffected *)

val equal_omission : omission -> omission -> bool
val omission_to_string : omission -> string
val omission_of_string : string -> omission option
val pp_omission : Format.formatter -> omission -> unit

type budget = { t_crash : int; t_omit : int }
(** A per-run adversary budget: at most [t_crash] crash victims and at
    most [t_omit] distinct omission-faulty processes. Soundness rule
    (DESIGN §13): a schedule under budget [(c, o)] is a legal attack on
    an algorithm designed for [t] faults only when [c + o <= t] — the
    validator enforces exactly that when a budget is declared. *)

val budget : t_crash:int -> t_omit:int -> budget
(** Raises [Invalid_argument] on a negative component. *)

val pp_budget : Format.formatter -> budget -> unit
(** Renders as ["c+o"], the form the codec and CLI use. *)

type faults = Crash_only | Send_omit_only | Recv_omit_only | Mixed
(** The fault menu the sweep/fuzz CLIs expose as [--faults]: which
    classes the adversary may draw on. [Mixed] allows crashes and both
    omission classes under the same budget. *)

val faults_to_string : faults -> string
val faults_of_string : string -> faults option
val pp_faults : Format.formatter -> faults -> unit
val all_faults : faults list
