(** The two round-based models of Section 1.2.

    {b SCS} — the synchronous crash-stop model: if [p_i] crashes in round [k],
    any subset of its round-[k] messages may be lost and the rest are received
    in round [k]; messages from non-crashed processes are received in the
    round they were sent. No message is ever delayed.

    {b ES} — the eventually synchronous model: runs may be "asynchronous" for
    an arbitrary yet finite number of rounds and then become synchronous.
    Every run satisfies (i) t-resilience: every process completing round [k]
    receives round-[k] messages from at least [n - t] processes, (ii) reliable
    channels: correct-to-correct messages are never lost but may be delayed,
    and (iii) eventual synchrony: there is an unknown finite round [K] (the
    schedule's [gst]) from which rounds behave synchronously. A run is
    {e synchronous} when [K = 1]; per footnote 5, even then messages sent by a
    process in its crash round may be delayed arbitrarily rather than lost. *)

type t =
  | Scs
  | Es
  | Dls_basic
      (** The fail-stop {e basic round model} of Dwork, Lynch and Stockmeyer
          (Sections 3.1/3.2.1 of [6]), which the paper's Section 1.4 notes
          is exactly the variant of ES without the t-resilience property in
          which all delayed messages are lost: before the (unknown, finite)
          global stabilisation round any message may simply be lost; from
          that round on, rounds behave synchronously. The lower-bound proof
          simplifies trivially to this model, which {!Mc.Attack.solo_split_dls}
          demonstrates. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
