(** Deliberately broken algorithms, as fuzz targets and containment
    fixtures. They are part of the library (not the test tree) because
    [ipi fuzz] exposes them: a campaign against a known-broken algorithm
    is how the whole find → contain → shrink loop is demonstrated and
    smoke-tested in CI. *)

(** FloodSet deciding after [t] rounds instead of [t + 1]: safe on
    failure-free runs, but a crash chain splits its decision — the
    canonical agreement-violation target. *)
module Eager_floodset : Sim.Algorithm.S

val eager_floodset : Sim.Algorithm.packed

val raising : at:int -> Sim.Algorithm.packed
(** [raising ~at] never decides and its [on_receive] raises in every round
    [>= at]; the engine contains it as {!Sim.Engine.Step_error}. *)

val raising_init : Sim.Algorithm.packed
(** Raises in [init] — before any round, outside the engine's containment
    boundary — to exercise the {!Mc.Parallel} shard backstop and the
    campaign's [Raised] outcome. *)
