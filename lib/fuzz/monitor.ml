open Kernel

type t = {
  proposed : Value.Set.t;
  omitters : Pid.Set.t;
  first : Sim.Trace.decision option;
  violation : Sim.Props.violation option;
}

let create ?(omitters = Pid.Set.empty) ~proposals () =
  let proposed =
    Pid.Map.fold (fun _ v acc -> Value.Set.add v acc) proposals Value.Set.empty
  in
  { proposed; omitters; first = None; violation = None }

let violation m = m.violation
let tripped m = m.violation <> None

let observe m (d : Sim.Trace.decision) =
  if m.violation <> None then m
  else if not (Value.Set.mem d.value m.proposed) then
    {
      m with
      violation = Some (Sim.Props.Validity { pid = d.pid; value = d.value });
    }
  else if Pid.Set.mem d.pid m.omitters then
    (* An omitter's decision is validity-checked above but takes no part in
       agreement: the soundness rule (DESIGN §13) judges agreement among
       correct processes only, exactly like {!Sim.Props.check_agreement}. *)
    m
  else
    match m.first with
    | None -> { m with first = Some d }
    | Some f ->
        if Value.equal f.value d.value then m
        else
          {
            m with
            violation =
              Some
                (Sim.Props.Agreement
                   {
                     pid_a = f.pid;
                     value_a = f.value;
                     pid_b = d.pid;
                     value_b = d.value;
                   });
          }

let observe_all m ds = List.fold_left observe m ds
