(** Greedy fixpoint minimization of failing schedules.

    Starting from any schedule whose {!Harness} outcome is a failure, the
    shrinker repeatedly tries one-step reductions — empty a whole round
    (latest first, so the horizon drops), remove one crash together with
    the same-round fate entries it justified, remove one omitter
    declaration together with the lost entries it licensed, remove one
    lost or delayed entry, pull gst one round earlier — and keeps the
    first reduction
    whose result still passes {!Sim.Schedule.validate} {e and} still
    fails with the {e same} {!Outcome.failure} class, until none applies.

    The result is therefore 1-minimal modulo model validity: no single
    remaining round, crash, omitter, fate entry or gst step can be
    removed without losing the violation or leaving the model. That is the strongest
    guarantee a greedy pass can give, and it is what turns a horizon-12,
    5-crash fuzz hit into evidence a human can read. *)

open Kernel

type report = {
  schedule : Sim.Schedule.t;  (** the 1-minimal schedule *)
  failure : Outcome.failure;  (** the preserved failure class *)
  steps : int;  (** accepted reductions *)
  attempts : int;  (** candidate runs tried (accepted + rejected) *)
}

val shrink :
  ?fuel:int ->
  ?max_steps:int ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  Sim.Schedule.t ->
  report option
(** [None] when the input schedule does not fail at all. [fuel] (default:
    the engine bound for the {e input} schedule) is held fixed across all
    candidate runs so a [Fuel]-class failure cannot vanish just because a
    shorter horizon lowered the default bound. [max_steps] (default
    unlimited) caps accepted reductions for callers on a budget — the
    1-minimality guarantee only holds when it is not hit. *)
