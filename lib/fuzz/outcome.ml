open Kernel

type t =
  | Passed of { rounds : int; decision_round : int option }
  | Violated of { round : int; violations : Sim.Props.violation list }
  | Crashed of Sim.Engine.step_error
  | Raised of string
  | Budget_exhausted of { fuel : int; undecided : Pid.t list }

type failure = Validity | Agreement | Termination | Crash | Fuel

let pp_failure ppf f =
  Format.pp_print_string ppf
    (match f with
    | Validity -> "validity"
    | Agreement -> "agreement"
    | Termination -> "termination"
    | Crash -> "crash"
    | Fuel -> "fuel")

let failure_of = function
  | Passed _ -> None
  | Crashed _ | Raised _ -> Some Crash
  | Budget_exhausted _ -> Some Fuel
  | Violated { violations; _ } ->
      (* Agreement outranks validity: a schedule that splits the decision
         is the stronger counterexample, and the shrinker must preserve
         the strongest class the run exhibits. *)
      let has p = List.exists p violations in
      if has (function Sim.Props.Agreement _ -> true | _ -> false) then
        Some Agreement
      else if has (function Sim.Props.Validity _ -> true | _ -> false) then
        Some Validity
      else Some Termination

let is_failure o = failure_of o <> None

let pp ppf = function
  | Passed { rounds; decision_round } ->
      Format.fprintf ppf "passed in %d round(s)%a" rounds
        (fun ppf -> function
          | None -> ()
          | Some r -> Format.fprintf ppf " (global decision round %d)" r)
        decision_round
  | Violated { round; violations } ->
      Format.fprintf ppf "@[<v>violated at round %d:@,%a@]" round
        (Format.pp_print_list Sim.Props.pp_violation)
        violations
  | Crashed e -> Format.fprintf ppf "crashed: %a" Sim.Engine.pp_step_error e
  | Raised msg -> Format.fprintf ppf "raised: %s" msg
  | Budget_exhausted { fuel; undecided } ->
      Format.fprintf ppf "budget exhausted after %d round(s); undecided: %a"
        fuel
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Pid.pp)
        undecided
