open Kernel

(* Deliberately broken algorithms: the fixtures every containment and
   shrinking test (and the CI smoke job) hunts against. They live in the
   library, not the test tree, because `ipi fuzz` exposes them too. *)

(* FloodSet that decides one round too early — after [t] rounds instead of
   the [t + 1] the lower bound demands. A single well-placed crash chain
   (e.g. [Workload.Cascade.chain]) splits its decision, so fuzz campaigns
   find agreement violations against it quickly, and those violations
   shrink to readable counterexamples. *)
module Eager_floodset = struct
  type msg = Flood of Value.Set.t

  type state = {
    config : Config.t;
    seen : Value.Set.t;
    decision : Value.t option;
  }

  let name = "EagerFloodSet"
  let model = Sim.Model.Scs

  (* Same symmetric structure as FloodSet — it is only *early*, not
     id-dependent — so reduced sweeps can be validated against it too. *)
  let symmetric = true
  let init config _pid v = { config; seen = Value.Set.singleton v; decision = None }
  let on_send st _round = Flood st.seen

  let on_receive st round inbox =
    let seen =
      List.fold_left
        (fun acc (e : msg Sim.Envelope.t) ->
          match e.payload with Flood values -> Value.Set.union values acc)
        st.seen inbox
    in
    (* One flooding round short: decides at round [max 1 t], not [t + 1]. *)
    if Round.to_int round >= max 1 (Config.t st.config) then
      { st with seen; decision = Some (Value.Set.min_elt seen) }
    else { st with seen }

  let decision st = st.decision
  let halted st = st.decision <> None
  let wire_size (Flood values) = 4 + (8 * Value.Set.cardinal values)

  let pp_msg ppf (Flood values) =
    Format.fprintf ppf "flood{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Value.pp)
      (Value.Set.elements values)

  let pp_state ppf st =
    Format.fprintf ppf "seen=%d%s"
      (Value.Set.cardinal st.seen)
      (if st.decision <> None then " decided" else "")
end

let eager_floodset = Sim.Algorithm.Packed (module Eager_floodset)

(* An algorithm whose [on_receive] raises from a given round on: the
   engine must contain it as a [Step_error] carrying the faulting pid and
   round. *)
module Raising_at (R : sig
  val at : int
end) =
struct
  type msg = Ping
  type state = { pid : Pid.t }

  let name = Format.sprintf "Raising@%d" R.at
  let model = Sim.Model.Scs
  let symmetric = true (* every process raises identically by round *)
  let init _config pid _v = { pid }
  let on_send _st _round = Ping

  let on_receive st round _inbox =
    if Round.to_int round >= R.at then failwith "injected fault" else st

  let decision _st = None
  let halted _st = false
  let wire_size Ping = 1
  let pp_msg ppf Ping = Format.pp_print_string ppf "ping"
  let pp_state ppf st = Pid.pp ppf st.pid
end

let raising ~at =
  let module M = Raising_at (struct
    let at = at
  end) in
  Sim.Algorithm.Packed (module M)

(* An algorithm that raises in [init] — outside every round, so the
   engine's containment cannot wrap it. Exercises the outer backstops:
   [Mc.Parallel] shard failures and the campaign's [Raised] outcome. *)
module Raising_init = struct
  type msg = Ping
  type state = unit

  let name = "RaisingInit"
  let model = Sim.Model.Scs
  let symmetric = true
  let init _config _pid _v = failwith "injected init fault"
  let on_send () _round = Ping
  let on_receive () _round _inbox = ()
  let decision () = None
  let halted () = false
  let wire_size Ping = 1
  let pp_msg ppf Ping = Format.pp_print_string ppf "ping"
  let pp_state ppf () = Format.pp_print_string ppf "-"
end

let raising_init = Sim.Algorithm.Packed (module Raising_init)
