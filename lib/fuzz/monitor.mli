(** Online safety monitor: validity and uniform agreement checked as
    decisions occur, not after the run.

    Purely functional and O(1) per decision: the monitor keeps the set of
    proposed values and the first decision seen. Feeding it every decision
    of a run in order trips it at the {e earliest} violating decision —
    the harness then aborts the run at that round, which on long schedules
    is what makes million-run campaigns affordable.

    The verdict agrees with the post-hoc checker by construction: a
    tripped monitor's violation is always a member of what
    {!Sim.Props.check_agreement} reports on the completed trace, and a
    quiet monitor means that check is safety-clean. The qcheck suite
    asserts this agreement on random runs. *)

open Kernel

type t

val create : ?omitters:Pid.Set.t -> proposals:Value.t Pid.Map.t -> unit -> t
(** A fresh monitor for a run with the given proposals. [omitters]
    (default empty) are the schedule's declared omission-faulty processes:
    their decisions are still validity-checked, but they neither anchor
    nor trip the agreement check — mirroring
    {!Sim.Props.check_agreement}'s judged set, which holds correct
    processes to account and lets faulty ones disagree (DESIGN §13). *)

val observe : t -> Sim.Trace.decision -> t
(** Fold one decision in. Once tripped, the monitor is sticky: further
    decisions are ignored and the first violation is kept. *)

val observe_all : t -> Sim.Trace.decision list -> t

val tripped : t -> bool

val violation : t -> Sim.Props.violation option
(** [Some (Validity _)] when a decision's value was never proposed,
    [Some (Agreement _)] when two decisions differ; [None] otherwise. *)
