open Kernel

type gen = Config.t -> Rng.t -> Sim.Schedule.t

type finding = {
  index : int;
  schedule : Sim.Schedule.t;
  outcome : Outcome.t;
  shrunk : Shrink.report option;
}

type report = {
  runs : int;
  skipped : int;
  passed : int;
  findings : finding list;
  shrink_steps : int;
  wall_s : float;
}

let default_gen config rng =
  match Rng.int rng 3 with
  | 0 -> Workload.Random_runs.synchronous rng config ()
  | 1 -> Workload.Random_runs.synchronous_with_delays rng config ()
  | _ ->
      Workload.Random_runs.eventually_synchronous rng config
        ~gst:(1 + Rng.int rng 3) ()

let mutation_gen ~base config rng = Workload.Mutate.generator ~base config rng

(* Contiguous slice of runs handled by shard [k] of [jobs] — the same
   split [Workload.Search.over] uses, so shard boundaries depend only on
   [runs] and [jobs], never on timing. *)
let slice ~jobs ~total k =
  let base = total / jobs and rem = total mod jobs in
  let lo = (k * base) + min k rem in
  let hi = lo + base + if k < rem then 1 else 0 in
  (lo, hi)

let run ?metrics ?(jobs = 1) ?fuel ?budget_s ?(shrink = false)
    ?(monitor = true) ?prof ?(progress = Obs.Progress.disabled) ~seed ~runs
    ~algo ~config ~proposals ~gen () =
  let started = Unix.gettimeofday () in
  let deadline = Option.map (fun b -> started +. b) budget_s in
  (* The schedule stream is drawn serially from the single seeded
     generator before any shard starts: sharding must repartition the
     exact same runs, not reseed per shard, or [--jobs] would change what
     the campaign explores. An explicit loop fixes the evaluation order
     ([Array.init]'s is unspecified). *)
  let schedules =
    let rng = Rng.create ~seed in
    let rec generate i acc =
      if i = runs then Array.of_list (List.rev acc)
      else generate (i + 1) (gen config rng :: acc)
    in
    generate 0 []
  in
  let jobs = max 1 jobs in
  Obs.Progress.set_total progress runs;
  (* One probe accumulator per shard (GC counters are per-domain; each
     worker touches only its own slot), merged into the caller's [prof]
     after the join. *)
  let shard_accs =
    match prof with
    | Some _ -> Array.init jobs (fun _ -> Obs.Prof.acc ())
    | None -> [||]
  in
  let one ?acc index =
    let schedule = schedules.(index) in
    let contained () =
      Harness.run_contained ?fuel ~monitor ~algo ~config ~proposals schedule
    in
    let outcome =
      match acc with
      | None -> contained ()
      | Some a -> Obs.Prof.measure a contained
    in
    match Outcome.failure_of outcome with
    | None -> None
    | Some _ ->
        let shrunk =
          if shrink then
            Shrink.shrink ?fuel ~algo ~config ~proposals schedule
          else None
        in
        Some { index; schedule; outcome; shrunk }
  in
  let shard k () =
    let acc = if shard_accs = [||] then None else Some shard_accs.(k) in
    let lo, hi = slice ~jobs ~total:runs k in
    let rec go i (processed, skipped, findings) =
      if i >= hi then (processed, skipped, List.rev findings)
      else if
        match deadline with
        | Some d -> Unix.gettimeofday () > d
        | None -> false
      then go (i + 1) (processed, skipped + 1, findings)
      else begin
        let findings =
          match one ?acc i with None -> findings | Some f -> f :: findings
        in
        if Obs.Progress.enabled progress then
          Obs.Progress.step progress ~items:1 ~runs:1 ~hits:0 ~lookups:0;
        go (i + 1) (processed + 1, skipped, findings)
      end
    in
    go lo (0, 0, [])
  in
  let shards =
    Array.to_list
      (Par.map_tasks
         ?report:
           (Option.map (fun m -> Obs.Prof.pool m ~prefix:"par") metrics)
         ~jobs
         (Array.init jobs (fun k -> shard k)))
  in
  (match prof with
  | Some into -> Array.iter (fun a -> Obs.Prof.merge ~into a) shard_accs
  | None -> ());
  let processed, skipped, findings =
    List.fold_left
      (fun (p, s, fs) (p', s', fs') -> (p + p', s + s', fs @ [ fs' ]))
      (0, 0, []) shards
  in
  let findings = List.concat findings in
  let shrink_steps =
    List.fold_left
      (fun acc f ->
        acc + match f.shrunk with Some r -> r.Shrink.steps | None -> 0)
      0 findings
  in
  let wall_s = Unix.gettimeofday () -. started in
  let report =
    {
      runs = processed;
      skipped;
      passed = processed - List.length findings;
      findings;
      shrink_steps;
      wall_s;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
      let count cls =
        Listx.count
          (fun f -> Outcome.failure_of f.outcome = Some cls)
          findings
      in
      Obs.Metrics.incr ~by:report.runs (Obs.Metrics.counter m "fuzz.runs");
      Obs.Metrics.incr
        ~by:
          (count Outcome.Validity + count Outcome.Agreement
         + count Outcome.Termination)
        (Obs.Metrics.counter m "fuzz.violations");
      Obs.Metrics.incr ~by:(count Outcome.Crash)
        (Obs.Metrics.counter m "fuzz.crashed");
      Obs.Metrics.incr ~by:(count Outcome.Fuel)
        (Obs.Metrics.counter m "fuzz.budget_exhausted");
      Obs.Metrics.incr ~by:report.skipped
        (Obs.Metrics.counter m "fuzz.skipped");
      Obs.Metrics.incr ~by:report.shrink_steps
        (Obs.Metrics.counter m "fuzz.shrink_steps");
      Obs.Metrics.set (Obs.Metrics.gauge m "fuzz.jobs") jobs;
      Obs.Metrics.observe
        (Obs.Metrics.histogram m "fuzz.wall_seconds")
        report.wall_s;
      if report.wall_s > 0. then
        Obs.Metrics.observe
          (Obs.Metrics.histogram m "fuzz.runs_per_second")
          (float_of_int report.runs /. report.wall_s));
  report

let finding_to_json f =
  let failure =
    match Outcome.failure_of f.outcome with
    | Some c -> Obs.Json.String (Format.asprintf "%a" Outcome.pp_failure c)
    | None -> Obs.Json.Null
  in
  let shrunk =
    match f.shrunk with
    | None -> Obs.Json.Null
    | Some r ->
        Obs.Json.Obj
          [
            ("schedule", Obs.Json.String (Sim.Codec.encode r.Shrink.schedule));
            ("steps", Obs.Json.Int r.Shrink.steps);
            ("attempts", Obs.Json.Int r.Shrink.attempts);
          ]
  in
  Obs.Json.Obj
    [
      ("index", Obs.Json.Int f.index);
      ("schedule", Obs.Json.String (Sim.Codec.encode f.schedule));
      ("failure", failure);
      ("outcome", Obs.Json.String (Format.asprintf "%a" Outcome.pp f.outcome));
      ("shrunk", shrunk);
    ]

let to_json ?(meta = []) report =
  Obs.Json.Obj
    (meta
    @ [
        ("runs", Obs.Json.Int report.runs);
        ("skipped", Obs.Json.Int report.skipped);
        ("passed", Obs.Json.Int report.passed);
        ("findings", Obs.Json.List (List.map finding_to_json report.findings));
        ("shrink_steps", Obs.Json.Int report.shrink_steps);
        ("wall_s", Obs.Json.Float report.wall_s);
      ])

let pp_finding ppf f =
  Format.fprintf ppf "@[<v2>run #%d: %a@,schedule: %a%a@]" f.index Outcome.pp
    f.outcome Sim.Schedule.pp f.schedule
    (fun ppf -> function
      | None -> ()
      | Some r ->
          Format.fprintf ppf
            "@,shrunk (%d step(s), %d attempt(s)) to: %a" r.Shrink.steps
            r.Shrink.attempts Sim.Schedule.pp r.Shrink.schedule)
    f.shrunk

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%d run(s) in %.2fs (%d skipped): %d passed, %d finding(s)%s@]"
    r.runs r.wall_s r.skipped r.passed
    (List.length r.findings)
    (if r.shrink_steps > 0 then
       Format.sprintf "; %d shrink step(s)" r.shrink_steps
     else "")
