(** The single-run executor of a fuzz campaign: one schedule simulated on
    the incremental engine core with an online {!Monitor}, a round budget,
    and {!Sim.Engine.Step_error} containment.

    Monitoring changes {e when} a violation is detected, never {e whether}:
    with [monitor] on the run aborts at the violating round; with it off
    the run completes and the same safety violations surface from the
    post-hoc {!Sim.Props.check}. The monitors-on/off distinction exists so
    the bench suite can price the monitor itself. *)

open Kernel

val run :
  ?fuel:int ->
  ?monitor:bool ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  Sim.Schedule.t ->
  Outcome.t
(** Step the schedule round by round (empty plans past its horizon) until
    every process halts, the monitor trips, or [fuel] rounds have executed
    (default {!Sim.Engine.default_max_rounds}).

    - all halted, post-hoc check clean → [Passed];
    - [monitor] (default [true]) trips → [Violated] at that round with the
      monitor's violation;
    - all halted but {!Sim.Props.check} complains (termination, or safety
      with the monitor off) → [Violated] at the last round;
    - fuel out → [Budget_exhausted] with the still-undecided correct
      processes;
    - the engine contains an algorithm fault → [Crashed].

    Exceptions outside the engine's containment propagate; see
    {!run_contained}. *)

val run_contained :
  ?fuel:int ->
  ?monitor:bool ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  Sim.Schedule.t ->
  Outcome.t
(** {!run} with a last-resort backstop: any other exception (e.g. raised
    from [Algorithm.init]) becomes [Raised] instead of killing the
    campaign. [Stack_overflow] and [Out_of_memory] still propagate. *)
