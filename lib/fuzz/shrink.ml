open Kernel

type report = {
  schedule : Sim.Schedule.t;
  failure : Outcome.failure;
  steps : int;
  attempts : int;
}

let is_empty_plan (p : Sim.Schedule.plan) =
  p.Sim.Schedule.crashes = [] && p.Sim.Schedule.lost = []
  && p.Sim.Schedule.delayed = []

(* Dropping trailing empty plans is what turns "empty a late round" into a
   genuine horizon reduction. *)
let trim plans =
  let rec drop = function
    | p :: rest when is_empty_plan p -> drop rest
    | rest -> rest
  in
  List.rev (drop (List.rev plans))

(* All one-step reductions of a schedule, in the order the greedy loop
   should try them: empty whole rounds (latest first, so the horizon
   shrinks as early as possible), then remove single crashes, then whole
   omitter declarations (with the losses they justified), then single
   fate entries, then pull gst one round earlier. Candidates are blind;
   the caller re-validates. *)
let candidates schedule =
  let plans = Sim.Schedule.plans schedule in
  let gst = Round.to_int (Sim.Schedule.gst schedule) in
  let model = Sim.Schedule.model schedule in
  let omitters0 = Sim.Schedule.omitters schedule in
  let budget = Sim.Schedule.budget schedule in
  let rebuild ?(gst = gst) ?(omitters = omitters0) plans =
    Sim.Schedule.make ~omitters ?budget ~model ~gst:(Round.of_int gst)
      (trim plans)
  in
  let horizon = List.length plans in
  let set k p' = List.mapi (fun i p -> if i = k - 1 then p' else p) plans in
  let update k f = set k (f (List.nth plans (k - 1))) in
  let empty_rounds =
    List.filter_map
      (fun k ->
        if is_empty_plan (List.nth plans (k - 1)) then None
        else Some (rebuild (set k Sim.Schedule.empty_plan)))
      (List.rev (Listx.range 1 horizon))
  in
  let per_round f =
    List.concat_map
      (fun k -> f k (List.nth plans (k - 1)))
      (Listx.range 1 horizon)
  in
  let drop_crashes =
    per_round (fun k (p : Sim.Schedule.plan) ->
        List.map
          (fun victim ->
            (* A crash leaves with the same-round entries it justified;
               keeping orphaned losses on a now-correct sender would just
               be rejected by the validator. *)
            rebuild
              (update k (fun p ->
                   {
                     Sim.Schedule.crashes =
                       List.filter
                         (fun v -> not (Pid.equal v victim))
                         p.Sim.Schedule.crashes;
                     lost =
                       List.filter
                         (fun (src, _) -> not (Pid.equal src victim))
                         p.Sim.Schedule.lost;
                     delayed =
                       List.filter
                         (fun (src, _, _) -> not (Pid.equal src victim))
                         p.Sim.Schedule.delayed;
                   })))
          p.Sim.Schedule.crashes)
  in
  let drop_omitters =
    (* An omitter declaration leaves with every lost entry it licensed
       (its outgoing copies for a send-omitter, its incoming ones for a
       receive-omitter); orphaned omission losses on a now-correct process
       would just be rejected by the validator. *)
    List.map
      (fun (culprit, cls) ->
        let licensed (src, dst) =
          match cls with
          | Sim.Model.Send_omit -> Pid.equal src culprit
          | Sim.Model.Recv_omit -> Pid.equal dst culprit
        in
        rebuild
          ~omitters:
            (List.filter (fun (p, _) -> not (Pid.equal p culprit)) omitters0)
          (List.map
             (fun (p : Sim.Schedule.plan) ->
               {
                 p with
                 Sim.Schedule.lost =
                   List.filter (fun e -> not (licensed e)) p.Sim.Schedule.lost;
               })
             plans))
      omitters0
  in
  let drop_losses =
    per_round (fun k (p : Sim.Schedule.plan) ->
        List.map
          (fun entry ->
            rebuild
              (update k (fun p ->
                   {
                     p with
                     Sim.Schedule.lost =
                       List.filter (fun e -> e <> entry) p.Sim.Schedule.lost;
                   })))
          p.Sim.Schedule.lost)
  in
  let drop_delays =
    per_round (fun k (p : Sim.Schedule.plan) ->
        List.map
          (fun entry ->
            rebuild
              (update k (fun p ->
                   {
                     p with
                     Sim.Schedule.delayed =
                       List.filter (fun e -> e <> entry) p.Sim.Schedule.delayed;
                   })))
          p.Sim.Schedule.delayed)
  in
  let pull_gst = if gst > 1 then [ rebuild ~gst:(gst - 1) plans ] else [] in
  empty_rounds @ drop_crashes @ drop_omitters @ drop_losses @ drop_delays
  @ pull_gst

let shrink ?fuel ?(max_steps = max_int) ~algo ~config ~proposals schedule =
  (* One fuel for the original and every candidate: the default bound
     depends on the horizon, and letting it drift while shrinking would
     let a [Fuel]-class failure "disappear" for the wrong reason. *)
  let fuel =
    Option.value fuel ~default:(Sim.Engine.default_max_rounds config schedule)
  in
  let classify s =
    Outcome.failure_of (Harness.run_contained ~fuel ~algo ~config ~proposals s)
  in
  match classify schedule with
  | None -> None
  | Some failure ->
      let attempts = ref 0 in
      let accept c =
        incr attempts;
        Sim.Schedule.validate config c = Ok () && classify c = Some failure
      in
      let rec fix s steps =
        if steps >= max_steps then (s, steps)
        else
          match List.find_opt accept (candidates s) with
          | None -> (s, steps)
          | Some c -> fix c (steps + 1)
      in
      let schedule, steps = fix schedule 0 in
      Some { schedule; failure; steps; attempts = !attempts }
