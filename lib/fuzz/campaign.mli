(** Seed-reproducible randomized fuzz campaigns.

    A campaign draws [runs] schedules from one seeded generator, executes
    each through the monitored, contained, fueled {!Harness}, optionally
    {!Shrink}s every failure, and aggregates a report.

    {b Determinism.} The schedule stream is generated serially from the
    single [seed] before any shard starts; [jobs] only repartitions the
    same indexed runs into contiguous slices (executed on {!Kernel.Par}
    domains), and shard results are merged in shard order. Every report
    field except [wall_s] is therefore bit-identical across [jobs] values
    — unless a wall-clock [budget_s] expires mid-campaign, since which
    runs get skipped then depends on timing. The determinism tests assert
    the [jobs] invariance. *)

open Kernel

type gen = Config.t -> Rng.t -> Sim.Schedule.t
(** A schedule generator; all randomness must come from the given rng. *)

type finding = {
  index : int;  (** position in the campaign's schedule stream *)
  schedule : Sim.Schedule.t;
  outcome : Outcome.t;  (** always a failure *)
  shrunk : Shrink.report option;
}

type report = {
  runs : int;  (** runs executed (excludes skipped) *)
  skipped : int;  (** runs dropped by the wall-clock budget *)
  passed : int;
  findings : finding list;  (** in stream order *)
  shrink_steps : int;  (** accepted reductions across all findings *)
  wall_s : float;
}

val default_gen : gen
(** Mixes {!Workload.Random_runs.synchronous},
    [synchronous_with_delays] and [eventually_synchronous] (gst 1..3)
    with equal probability. *)

val mutation_gen : base:Sim.Schedule.t -> gen
(** Perturbs [base] with 1–3 random {!Workload.Mutate} operators per
    run — dense exploration of a known-interesting neighbourhood. *)

val run :
  ?metrics:Obs.Metrics.t ->
  ?jobs:int ->
  ?fuel:int ->
  ?budget_s:float ->
  ?shrink:bool ->
  ?monitor:bool ->
  ?prof:Obs.Prof.acc ->
  ?progress:Obs.Progress.t ->
  seed:int ->
  runs:int ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  gen:gen ->
  unit ->
  report
(** Run a campaign. [jobs] (default 1) shards across domains; [fuel]
    bounds each run's rounds (default: the engine bound per schedule);
    [budget_s] is a wall-clock cap after which remaining runs are
    {e skipped}, not aborted mid-run; [shrink] (default [false])
    minimizes every finding; [monitor] (default [true]) enables the
    online monitor (off = post-hoc checking only, for overhead
    benchmarks).

    With [metrics] the campaign reports the [fuzz.runs],
    [fuzz.violations] (safety/termination findings), [fuzz.crashed]
    (contained faults, [Crashed] + [Raised]), [fuzz.budget_exhausted],
    [fuzz.skipped] and [fuzz.shrink_steps] counters, the [fuzz.jobs]
    gauge and the [fuzz.wall_seconds] / [fuzz.runs_per_second]
    histograms, plus the {!Kernel.Par} pool utilization gauges
    ([par.workers], [par.w<i>.*]).

    Instrumentation (default-off, never affects the report): [prof]
    accumulates a GC/alloc interval per executed run, merged from
    per-shard accumulators in shard order; [progress] gets its total set
    to [runs] and is stepped once per executed run from the worker
    domains (skipped runs are not stepped, so a budget-cut campaign
    finishes below its total). *)

val to_json : ?meta:(string * Obs.Json.t) list -> report -> Obs.Json.t
(** Machine-readable report; schedules are embedded as {!Sim.Codec}
    strings so counterexamples replay with [ipi run --schedule]. [meta]
    key/values (seed, algorithm, config ...) are prepended verbatim. *)

val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit
