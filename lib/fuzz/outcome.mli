(** The structured result of one monitored fuzz run.

    Plain data — no closures, no abstract state — so outcomes compare with
    structural equality, which is what the campaign determinism tests
    (bit-identical reports across [--jobs] values) rely on. *)

open Kernel

type t =
  | Passed of { rounds : int; decision_round : int option }
      (** ran to quiescence, no violation; [rounds] is the number of rounds
          executed and [decision_round] the global decision round (when
          every correct process decided) *)
  | Violated of { round : int; violations : Sim.Props.violation list }
      (** the online monitor aborted the run at [round], or the post-hoc
          check of a completed run found violations (then [round] is the
          last round executed) *)
  | Crashed of Sim.Engine.step_error
      (** the engine contained an algorithm fault — full pid/round
          context travels with the outcome *)
  | Raised of string
      (** an exception outside the engine's containment (e.g. a raising
          [Algorithm.init]), caught by the campaign backstop *)
  | Budget_exhausted of { fuel : int; undecided : Pid.t list }
      (** the run's round budget ran out before quiescence *)

(** The failure class of an outcome — what the shrinker must preserve.
    [Violated] collapses to the strongest property broken ([Agreement]
    outranks [Validity] outranks [Termination]); both [Crashed] and
    [Raised] are [Crash]; [Budget_exhausted] is [Fuel]. *)
type failure = Validity | Agreement | Termination | Crash | Fuel

val failure_of : t -> failure option
(** [None] exactly on [Passed]. *)

val is_failure : t -> bool
val pp : Format.formatter -> t -> unit
val pp_failure : Format.formatter -> failure -> unit
