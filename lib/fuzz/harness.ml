open Kernel

(* One monitored, contained, fueled run on the incremental engine core.
   Rounds are stepped one by one so the monitor sees each round's new
   decisions as they happen; past the schedule horizon the shared
   precompiled empty plan keeps the loop allocation-free. *)

let run ?fuel ?(monitor = true) ~algo:(Sim.Algorithm.Packed (module A))
    ~config ~proposals schedule =
  let module E = Sim.Engine.Make (A) in
  let n = Config.n config in
  let fuel =
    Option.value fuel ~default:(Sim.Engine.default_max_rounds config schedule)
  in
  let horizon = Sim.Schedule.horizon schedule in
  let omitters = Sim.Schedule.omitter_set schedule in
  let undecided st =
    let decided = List.map (fun d -> d.Sim.Trace.pid) (E.Incremental.decisions st) in
    let crashed = List.map fst (E.Incremental.crashed st) in
    List.filter
      (fun p ->
        (not (List.exists (Pid.equal p) decided))
        && (not (List.exists (Pid.equal p) crashed))
        (* Termination, like the post-hoc checker, is owed by correct
           processes only — a declared omitter may be starved forever. *)
        && not (Pid.Set.mem p omitters))
      (Config.processes config)
  in
  let completed st ~rounds =
    let trace = E.Incremental.finish ~max_rounds:fuel ~schedule st in
    match Sim.Props.check trace with
    | [] ->
        Outcome.Passed
          {
            rounds;
            decision_round =
              Option.map Round.to_int (Sim.Trace.global_decision_round trace);
          }
    | violations -> Outcome.Violated { round = rounds; violations }
  in
  try
    let rec go st mon ~seen ~round =
      if E.Incremental.all_halted st then completed st ~rounds:(round - 1)
      else if round > fuel then
        Outcome.Budget_exhausted { fuel; undecided = undecided st }
      else
        let plan =
          if round <= horizon then
            Sim.Schedule.compile_plan ~n
              (Sim.Schedule.plan_at schedule (Round.of_int round))
          else Sim.Schedule.compiled_empty_plan
        in
        let st = E.Incremental.step st plan in
        let decisions = E.Incremental.decisions st in
        if not monitor then
          go st mon ~seen:(List.length decisions) ~round:(round + 1)
        else
          let mon = Monitor.observe_all mon (Listx.drop seen decisions) in
          match Monitor.violation mon with
          | Some v -> Outcome.Violated { round; violations = [ v ] }
          | None -> go st mon ~seen:(List.length decisions) ~round:(round + 1)
    in
    go
      (E.Incremental.start config ~proposals)
      (Monitor.create ~omitters ~proposals ())
      ~seen:0 ~round:1
  with Sim.Engine.Step_error e -> Outcome.Crashed e

let run_contained ?fuel ?monitor ~algo ~config ~proposals schedule =
  try run ?fuel ?monitor ~algo ~config ~proposals schedule with
  | (Stack_overflow | Out_of_memory) as e -> raise e
  | e -> Outcome.Raised (Printexc.to_string e)
