(** Small list helpers shared across the libraries. *)

val count : ('a -> bool) -> 'a list -> int
(** Number of elements satisfying the predicate. *)

val occurrences : compare:('a -> 'a -> int) -> 'a list -> ('a * int) list
(** Multiset view: distinct elements with their multiplicities, sorted by
    [compare]. *)

val most_frequent : compare:('a -> 'a -> int) -> 'a list -> ('a * int) option
(** The element with the highest multiplicity (least under [compare] on
    ties), or [None] on the empty list. *)

val all_equal : equal:('a -> 'a -> bool) -> 'a list -> bool
(** [true] on lists whose elements are pairwise equal (including [[]]). *)

val take : int -> 'a list -> 'a list
(** First [k] elements (all of them if the list is shorter). *)

val drop : int -> 'a list -> 'a list

val range : int -> int -> int list
(** [range lo hi] is [[lo; lo+1; ...; hi]]; empty when [lo > hi]. *)

val cartesian : 'a list -> 'b list -> ('a * 'b) list

val subsets : 'a list -> 'a list list
(** All [2^n] subsets, each preserving the original order. Intended for the
    model checker's small universes only. *)

val prefixes : 'a list -> 'a list list
(** [prefixes [a;b]] is [[[]; [a]; [a;b]]]. *)

val find_map_opt : ('a -> 'b option) -> 'a list -> 'b option
(** Alias of [List.find_map], kept for symmetry with older call sites. *)

val max_by : compare:('b -> 'b -> int) -> f:('a -> 'b) -> 'a list -> 'a option
(** Element maximising [f], or [None] on the empty list; earliest wins
    ties. *)
