type t = int

let max_pid = Sys.int_size - 1

let check p =
  if p < 1 || p > max_pid then
    invalid_arg
      (Printf.sprintf "Bitset: pid %d outside 1..%d" p max_pid)

let empty = 0
let is_empty s = s = 0
let bit p = 1 lsl (p - 1)

let singleton p =
  check p;
  bit p

let add p s =
  check p;
  s lor bit p

let remove p s =
  check p;
  s land lnot (bit p)

let mem p s = p >= 1 && p <= max_pid && s land bit p <> 0

let full ~n =
  if n < 0 || n > max_pid then
    invalid_arg (Printf.sprintf "Bitset.full: n %d outside 0..%d" n max_pid);
  (1 lsl n) - 1

let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let subset a b = a land lnot b = 0

(* Kernighan popcount: one iteration per set bit, and the sets here are
   process sets (tens of bits at most). *)
let cardinal s =
  let rec go acc s = if s = 0 then acc else go (acc + 1) (s land (s - 1)) in
  go 0 s

(* pid of the lowest set bit: bits are 1-based pids *)
let rec lowest p v = if v land 1 = 1 then p else lowest (p + 1) (v lsr 1)

let rec fold f s acc =
  if s = 0 then acc
  else (* lowest set bit first: iteration order is ascending pid *)
    fold f (s land (s - 1)) (f (lowest 1 s) acc)

let iter f s = fold (fun p () -> f p) s ()
let to_list s = List.rev (fold (fun p acc -> p :: acc) s [])
let of_list ps = List.fold_left (fun s p -> add p s) empty ps
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let to_int s = s

let of_pid_set ps = Pid.Set.fold (fun p s -> add (Pid.to_int p) s) ps empty

let to_pid_set s =
  fold (fun p acc -> Pid.Set.add (Pid.of_int p) acc) s Pid.Set.empty

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (to_list s)
