module type S = sig
  type t

  val empty : t
  val is_empty : t -> bool
  val singleton : int -> t
  val add : int -> t -> t
  val remove : int -> t -> t
  val mem : int -> t -> bool
  val full : n:int -> t
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val subset : t -> t -> bool
  val cardinal : t -> int
  val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
  val iter : (int -> unit) -> t -> unit
  val to_list : t -> int list
  val of_list : int list -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val of_pid_set : Pid.Set.t -> t
  val to_pid_set : t -> Pid.Set.t
  val pp : Format.formatter -> t -> unit
end

type t = int

let max_pid = Sys.int_size - 1

let check p =
  if p < 1 || p > max_pid then
    invalid_arg
      (Printf.sprintf "Bitset: pid %d outside 1..%d" p max_pid)

let empty = 0
let is_empty s = s = 0
let bit p = 1 lsl (p - 1)

let singleton p =
  check p;
  bit p

let add p s =
  check p;
  s lor bit p

let remove p s =
  check p;
  s land lnot (bit p)

let mem p s = p >= 1 && p <= max_pid && s land bit p <> 0

let full ~n =
  if n < 0 || n > max_pid then
    invalid_arg (Printf.sprintf "Bitset.full: n %d outside 0..%d" n max_pid);
  (1 lsl n) - 1

let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let subset a b = a land lnot b = 0
let cardinal = Bits.popcount

(* pid of the lowest set bit: bits are 1-based pids *)
let lowest v = Bits.ctz v + 1

let rec fold f s acc =
  if s = 0 then acc
  else (* lowest set bit first: iteration order is ascending pid *)
    fold f (s land (s - 1)) (f (lowest s) acc)

let iter f s = fold (fun p () -> f p) s ()
let to_list s = List.rev (fold (fun p acc -> p :: acc) s [])
let of_list ps = List.fold_left (fun s p -> add p s) empty ps
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let to_int s = s

let of_pid_set ps = Pid.Set.fold (fun p s -> add (Pid.to_int p) s) ps empty

let to_pid_set s =
  fold (fun p acc -> Pid.Set.add (Pid.of_int p) acc) s Pid.Set.empty

let pp_ints ppf ps =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    ps

let pp ppf s = pp_ints ppf (to_list s)

(* ------------------------------------------------------------------ *)
(* The array-backed variant: pids bounded only by memory.

   Word [w] holds pids [w*word_bits + 1 .. (w+1)*word_bits] in its low
   [word_bits] bits, so a single-word Big set stores exactly the same bit
   pattern as the int variant — the equivalence the QCheck suite pins.

   Canonical form: no trailing zero words ([empty] is [[||]]).  Every
   constructor trims, so two Big sets holding the same pids are
   structurally equal arrays — polymorphic [(=)], [Stdlib.compare] and
   [Hashtbl.hash] are meaningful, which is what lets them sit inside
   {!Mc.Dedup} transposition-table keys exactly like the int variant. *)

module Big = struct
  type t = int array

  let word_bits = Sys.int_size
  let empty : t = [||]
  let is_empty (s : t) = Array.length s = 0

  let check p =
    if p < 1 then invalid_arg (Printf.sprintf "Bitset.Big: pid %d < 1" p)

  let word p = (p - 1) / word_bits
  let bit p = 1 lsl ((p - 1) mod word_bits)

  (* Smallest canonical array covering the highest set word. *)
  let trim (a : int array) =
    let n = ref (Array.length a) in
    while !n > 0 && a.(!n - 1) = 0 do
      decr n
    done;
    if !n = Array.length a then a else Array.sub a 0 !n

  let singleton p =
    check p;
    let a = Array.make (word p + 1) 0 in
    a.(word p) <- bit p;
    a

  let add p (s : t) =
    check p;
    let w = word p in
    let len = Stdlib.max (Array.length s) (w + 1) in
    if w < Array.length s && s.(w) land bit p <> 0 then s
    else begin
      let a = Array.make len 0 in
      Array.blit s 0 a 0 (Array.length s);
      a.(w) <- a.(w) lor bit p;
      a
    end

  let remove p (s : t) =
    check p;
    let w = word p in
    if w >= Array.length s || s.(w) land bit p = 0 then s
    else begin
      let a = Array.copy s in
      a.(w) <- a.(w) land lnot (bit p);
      trim a
    end

  let mem p (s : t) =
    p >= 1 && word p < Array.length s && s.(word p) land bit p <> 0

  let full ~n =
    if n < 0 then invalid_arg (Printf.sprintf "Bitset.Big.full: n %d < 0" n);
    if n = 0 then empty
    else begin
      let words = ((n - 1) / word_bits) + 1 in
      (* [-1] is the all-ones word ([int] has exactly [word_bits] bits). *)
      let a = Array.make words (-1) in
      let top = n - ((words - 1) * word_bits) in
      a.(words - 1) <- (if top = word_bits then -1 else (1 lsl top) - 1);
      a
    end

  let union (a : t) (b : t) =
    let la = Array.length a and lb = Array.length b in
    if la = 0 then b
    else if lb = 0 then a
    else begin
      let short, long = if la <= lb then (a, b) else (b, a) in
      let r = Array.copy long in
      Array.iteri (fun i w -> r.(i) <- r.(i) lor w) short;
      r
    end

  let inter (a : t) (b : t) =
    let l = Stdlib.min (Array.length a) (Array.length b) in
    trim (Array.init l (fun i -> a.(i) land b.(i)))

  let diff (a : t) (b : t) =
    let lb = Array.length b in
    trim
      (Array.mapi (fun i w -> if i < lb then w land lnot b.(i) else w) a)

  let subset (a : t) (b : t) =
    let lb = Array.length b in
    let ok = ref true in
    Array.iteri
      (fun i w ->
        if w land lnot (if i < lb then b.(i) else 0) <> 0 then ok := false)
      a;
    !ok

  let cardinal (s : t) =
    Array.fold_left (fun acc w -> acc + Bits.popcount w) 0 s

  let fold f (s : t) acc =
    let acc = ref acc in
    Array.iteri
      (fun i w ->
        let base = i * word_bits in
        let w = ref w in
        while !w <> 0 do
          acc := f (base + Bits.ctz !w + 1) !acc;
          w := !w land (!w - 1)
        done)
      s;
    !acc

  let iter f s = fold (fun p () -> f p) s ()
  let to_list s = List.rev (fold (fun p acc -> p :: acc) s [])
  let of_list ps = List.fold_left (fun s p -> add p s) empty ps
  let equal (a : t) (b : t) = a = b

  (* Numeric order on the represented bit string: longer arrays hold
     higher pids, ties break on the most significant differing word. For
     single-word sets this agrees with the int variant's comparison. *)
  let compare (a : t) (b : t) =
    match Stdlib.compare (Array.length a) (Array.length b) with
    | 0 ->
        let rec go i =
          if i < 0 then 0
          else match Stdlib.compare a.(i) b.(i) with 0 -> go (i - 1) | c -> c
        in
        go (Array.length a - 1)
    | c -> c

  (* From the int variant's raw bits ({!to_int}): a one-word Big set. *)
  let of_small (bits : int) : t = if bits = 0 then empty else [| bits |]

  let of_pid_set ps =
    Pid.Set.fold (fun p s -> add (Pid.to_int p) s) ps empty

  let to_pid_set s =
    fold (fun p acc -> Pid.Set.add (Pid.of_int p) acc) s Pid.Set.empty

  let pp ppf s = pp_ints ppf (to_list s)
end
