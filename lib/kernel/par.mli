(** A minimal fork-join worker pool over OCaml 5 domains.

    The model checker's sweeps decompose into independent coarse-grained
    tasks (one per choice subtree or proposal assignment); this module runs
    such a task array on up to [jobs] domains with work stealing via a
    shared atomic index. Results come back positionally, so callers can
    reduce them in a deterministic order regardless of which domain ran
    what — determinism of the merged result is the caller's invariant and
    this module is careful not to break it.

    Only the standard library and [unix] are used ([Domain], [Atomic],
    [Unix.gettimeofday] for the optional utilization report); no external
    dependency. *)

type worker_stat = { tasks : int; busy_s : float; idle_s : float }
(** Per-worker utilization for one {!map_tasks} call: how many tasks the
    worker claimed, wall time spent inside tasks, and wall time the worker
    existed but ran nothing ([idle_s] is measured against the pool's total
    wall, so it includes spawn/join skew). Worker 0 is the calling
    domain. *)

val map_tasks :
  ?report:(worker_stat array -> unit) -> jobs:int -> (unit -> 'a) array -> 'a array
(** [map_tasks ~jobs tasks] runs every task and returns their results in
    task order. At most [min jobs (Array.length tasks)] domains run at
    once (the calling domain counts as one), further capped at
    {!default_jobs} — oversubscribing a CPU-bound pool only adds
    stop-the-world minor-GC barriers, so asking for more workers than
    cores silently degrades to the core count (results are identical
    either way). [jobs <= 1] runs everything sequentially in the calling
    domain — no spawning at all, the serial path stays exactly as cheap
    as a plain [Array.map].

    Tasks must not themselves spawn unbounded domains and must be safe to
    run concurrently with each other. If any task raises, one of the
    raised exceptions is re-raised after every domain has been joined.

    [report], when given, is called once after the join — only if no task
    raised — with one {!worker_stat} per worker in worker order.
    Collecting the stats costs two clock reads per task, paid only when
    [report] is passed; the untimed path is unchanged. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: a sensible [jobs] when the user
    asks for "all cores". *)
