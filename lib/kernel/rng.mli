(** Deterministic pseudo-random number generator (splitmix64).

    Every randomised component of the reproduction — schedule generators,
    random searches, property tests not driven by QCheck — draws from this
    generator so that runs are reproducible from a single integer seed. The
    implementation is the standard splitmix64 sequence, chosen because it is
    tiny, fast, splittable and has well-understood statistical quality. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t

val copy : t -> t
(** Independent copy continuing from the same state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s continuation. *)

val bits64 : t -> int64
(** Next 64 raw bits. *)

val int : t -> int -> int
(** [int g bound] is uniform in [0, bound); [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [lo, hi] inclusive; requires [lo <= hi]. *)

val bool : t -> bool
val float : t -> float -> float

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val pick_opt : t -> 'a list -> 'a option
(** [None] on the empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform permutation. *)

val subset : t -> 'a list -> 'a list
(** Each element kept independently with probability 1/2. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample g k xs] is a uniform [k]-subset of [xs] (all of [xs] if
    [k >= length xs]), in the original order. *)
