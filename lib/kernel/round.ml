type t = int

let first = 1

let of_int r =
  if r < 1 then invalid_arg "Round.of_int: rounds are numbered from 1";
  r

let to_int r = r
let succ r = r + 1
let pred r = if r <= 1 then None else Some (r - 1)
let compare = Int.compare
let equal = Int.equal
let ( <= ) = Stdlib.( <= )
let ( < ) = Stdlib.( < )
let ( >= ) = Stdlib.( >= )
let ( > ) = Stdlib.( > )
let max = Stdlib.max

let add r d =
  let r' = r + d in
  if r' < 1 then invalid_arg "Round.add: result below round 1";
  r'

let diff a b = a - b

let iter_up_to r ~f =
  for k = 1 to r do
    f k
  done

let pp = Format.pp_print_int
let to_string = string_of_int
