(* Branch-light bit counting shared by both Bitset variants.

   OCaml has no portable popcount primitive and its 63-bit int literals
   cannot hold the 64-bit SWAR masks (0x5555... overflows max_int), so the
   population count goes through a 16-bit lookup table instead: four loads
   and three adds per word, no data-dependent branches, and the table is a
   one-time 64 KiB [Bytes.t] built at module initialisation. *)

let table =
  Bytes.init 65536 (fun i ->
      let rec go acc v = if v = 0 then acc else go (acc + 1) (v land (v - 1)) in
      Char.chr (go 0 i))

let[@inline] chunk x = Char.code (Bytes.unsafe_get table (x land 0xffff))

let[@inline] popcount x =
  chunk x + chunk (x lsr 16) + chunk (x lsr 32) + chunk (x lsr 48)

(* [x land (-x)] isolates the lowest set bit; subtracting one turns it into
   a mask of the zeros below it, whose population count is the index. *)
let[@inline] ctz x = if x = 0 then Sys.int_size else popcount ((x land -x) - 1)
