type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }
let copy g = { state = g.state }

let golden = 0x9E3779B97F4A7C15L

let bits64 g =
  g.state <- Int64.add g.state golden;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g =
  let seed = Int64.to_int (bits64 g) in
  { state = Int64.of_int seed }

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (bits64 g) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let int_in g lo hi =
  if lo > hi then invalid_arg "Rng.int_in: empty range";
  lo + int g (hi - lo + 1)

let bool g = Int64.logand (bits64 g) 1L = 1L

let float g bound =
  let mask53 = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float mask53 /. 9007199254740992.0 *. bound

let pick g = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int g (List.length xs))

let pick_opt g = function [] -> None | xs -> Some (pick g xs)

let shuffle g xs =
  let arr = Array.of_list xs in
  let len = Array.length arr in
  for i = len - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let subset g xs = List.filter (fun _ -> bool g) xs

let sample g k xs =
  let len = List.length xs in
  if k >= len then xs
  else begin
    (* Reservoir-free: mark k distinct positions, then filter in order. *)
    let chosen = Hashtbl.create k in
    let rec fill remaining =
      if remaining > 0 then begin
        let i = int g len in
        if Hashtbl.mem chosen i then fill remaining
        else begin
          Hashtbl.add chosen i ();
          fill (remaining - 1)
        end
      end
    in
    fill k;
    List.filteri (fun i _ -> Hashtbl.mem chosen i) xs
  end
