type t = int

let of_int i =
  if i < 1 then invalid_arg "Pid.of_int: process ids are 1-based";
  i

let to_int p = p
let compare = Int.compare
let equal = Int.equal
let hash p = p
let pp ppf p = Format.fprintf ppf "p%d" p
let to_string p = Format.asprintf "%a" pp p
let all ~n = List.init n (fun i -> i + 1)
let others ~n p = List.filter (fun q -> q <> p) (all ~n)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = struct
  include Set.Make (Ord)

  let pp ppf s =
    let pp_sep ppf () = Format.fprintf ppf ",@ " in
    Format.fprintf ppf "{@[%a@]}"
      (Format.pp_print_list ~pp_sep pp)
      (elements s)

  let of_ints is = of_list (List.map of_int is)
  let universe ~n = of_list (all ~n)
end

module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
