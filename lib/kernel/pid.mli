(** Process identifiers.

    The paper's system is [Pi = {p1, p2, ..., pn}]; a {!t} is the index [i] of
    process [p_i], always in [1..n]. The total order on indices is significant:
    several algorithms break ties by process id (e.g. the leader oracle of the
    paper's footnote 10 picks the minimum id among round senders). *)

type t
(** The identifier of one process. *)

val of_int : int -> t
(** [of_int i] is the id of process [p_i]. Raises [Invalid_argument] when
    [i < 1]: ids are 1-based, matching the paper's notation. *)

val to_int : t -> int
(** [to_int p] is the 1-based index of [p]. *)

val compare : t -> t -> int
(** Total order by index. *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as ["p3"]. *)

val to_string : t -> string

val all : n:int -> t list
(** [all ~n] is [[p1; ...; pn]] in increasing order. *)

val others : n:int -> t -> t list
(** [others ~n p] is every process in [all ~n] except [p], in increasing
    order. *)

module Set : sig
  include Set.S with type elt = t

  val pp : Format.formatter -> t -> unit
  (** Prints as ["{p1, p4}"]. *)

  val of_ints : int list -> t
  (** [of_ints [1; 4]] is [{p1, p4}]. *)

  val universe : n:int -> t
  (** [universe ~n] is the set of all [n] processes. *)
end

module Map : Map.S with type key = t

module Tbl : Hashtbl.S with type key = t
