(** Dense process-id sets.

    Two structurally-canonical representations behind one signature
    ({!module-type-S}):

    - the default int-backed variant ([t = private int]): pids up to
      {!max_pid} ([Sys.int_size - 1], 62 on 64-bit platforms), every
      operation branch-light bit arithmetic on an unboxed value;
    - {!Big}, backed by an int array in canonical (trailing-zero-trimmed)
      form: pids bounded only by memory, one extra indirection per
      operation.

    Both hash with [Hashtbl.hash] and compare with polymorphic [(=)]
    canonically — two sets holding the same pids are structurally equal —
    which is what makes either usable inside transposition-table keys
    ({!Mc.Dedup}) and the engine's per-round fate fast path. Population
    counts and lowest-bit scans share the {!Bits} lookup-table helpers. *)

(** Operations common to both variants. Pids are 1-based. *)
module type S = sig
  type t

  val empty : t
  val is_empty : t -> bool
  val singleton : int -> t
  val add : int -> t -> t
  val remove : int -> t -> t

  val mem : int -> t -> bool
  (** Total: pids outside the representable range are simply not
      members. *)

  val full : n:int -> t
  (** [{1, .., n}]. *)

  val union : t -> t -> t
  val inter : t -> t -> t

  val diff : t -> t -> t
  (** [diff a b] is the elements of [a] not in [b]. *)

  val subset : t -> t -> bool
  (** [subset a b] iff every element of [a] is in [b]. *)

  val cardinal : t -> int

  val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
  (** Ascending pid order, like [Pid.Set.fold]. *)

  val iter : (int -> unit) -> t -> unit

  val to_list : t -> int list
  (** Ascending. *)

  val of_list : int list -> t
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val of_pid_set : Pid.Set.t -> t
  val to_pid_set : t -> Pid.Set.t
  val pp : Format.formatter -> t -> unit
end

type t = private int

val max_pid : int
(** Largest pid the int variant represents. Its constructors raise
    [Invalid_argument] on pids outside [1..max_pid]. *)

include S with type t := t

val to_int : t -> int
(** The raw bits ([bit p-1] set iff [p] is a member): a canonical,
    allocation-free hash key. *)

(** The array-backed variant for [n > max_pid]. A one-word {!Big.t}
    stores exactly the int variant's bit pattern (the equivalence the
    kernel QCheck suite pins), and {!Big.compare} agrees with the int
    variant's order on such sets. *)
module Big : sig
  include S

  val of_small : int -> t
  (** Lift the int variant's raw bits ({!to_int}) into a Big set. *)
end
