(** Dense process-id sets packed into one immutable [int].

    Pids are 1-based and at most {!max_pid} ([Sys.int_size - 1], 62 on
    64-bit platforms) — far above any system size the simulator or model
    checker runs at. Every operation is branch-free bit arithmetic on an
    unboxed value, so these sets cost nothing to copy, hash with
    [Hashtbl.hash] in O(1), and compare with [(=)] canonically: unlike
    [Pid.Set.t], two bitsets holding the same pids are {e physically} the
    same integer, which is what makes them usable inside transposition-table
    keys ({!Mc.Dedup}) and the engine's per-round fate fast path. *)

type t = private int

val max_pid : int
(** Largest representable pid. Constructors raise [Invalid_argument] on
    pids outside [1..max_pid]. *)

val empty : t
val is_empty : t -> bool
val singleton : int -> t
val add : int -> t -> t
val remove : int -> t -> t

val mem : int -> t -> bool
(** Total: pids outside [1..max_pid] are simply not members. *)

val full : n:int -> t
(** [{1, .., n}]. *)

val union : t -> t -> t
val inter : t -> t -> t

val diff : t -> t -> t
(** [diff a b] is the elements of [a] not in [b]. *)

val subset : t -> t -> bool
(** [subset a b] iff every element of [a] is in [b]. *)

val cardinal : t -> int

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending pid order, like [Pid.Set.fold]. *)

val iter : (int -> unit) -> t -> unit

val to_list : t -> int list
(** Ascending. *)

val of_list : int list -> t
val equal : t -> t -> bool
val compare : t -> t -> int

val to_int : t -> int
(** The raw bits ([bit p-1] set iff [p] is a member): a canonical,
    allocation-free hash key. *)

val of_pid_set : Pid.Set.t -> t
val to_pid_set : t -> Pid.Set.t
val pp : Format.formatter -> t -> unit
