let count pred xs = List.fold_left (fun acc x -> if pred x then acc + 1 else acc) 0 xs

let occurrences ~compare xs =
  let sorted = List.sort compare xs in
  let rec group acc = function
    | [] -> List.rev acc
    | x :: rest ->
        let same, others = List.partition (fun y -> compare x y = 0) rest in
        group ((x, 1 + List.length same) :: acc) others
  in
  group [] sorted

let most_frequent ~compare xs =
  match occurrences ~compare xs with
  | [] -> None
  | occ ->
      let best (xv, xc) (yv, yc) = if yc > xc then (yv, yc) else (xv, xc) in
      Some (List.fold_left best (List.hd occ) (List.tl occ))

let all_equal ~equal = function
  | [] -> true
  | x :: rest -> List.for_all (equal x) rest

let rec take k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: rest -> x :: take (k - 1) rest

let rec drop k = function
  | xs when k <= 0 -> xs
  | [] -> []
  | _ :: rest -> drop (k - 1) rest

let range lo hi = if lo > hi then [] else List.init (hi - lo + 1) (fun i -> lo + i)

let cartesian xs ys = List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs

let subsets xs =
  List.fold_right (fun x acc -> List.map (fun s -> x :: s) acc @ acc) xs [ [] ]

let prefixes xs =
  let rec go acc rev_prefix = function
    | [] -> List.rev acc
    | x :: rest ->
        let rev_prefix = x :: rev_prefix in
        go (List.rev rev_prefix :: acc) rev_prefix rest
  in
  go [ [] ] [] xs

let find_map_opt = List.find_map

let max_by ~compare ~f = function
  | [] -> None
  | x :: rest ->
      let better acc y = if compare (f y) (f acc) > 0 then y else acc in
      Some (List.fold_left better x rest)
