type t = { n : int; t : int }

let make ~n ~t =
  if n < 1 then invalid_arg "Config.make: need at least one process";
  if t < 0 then invalid_arg "Config.make: t must be non-negative";
  if t >= n then invalid_arg "Config.make: t must be smaller than n";
  { n; t }

let n c = c.n
let t c = c.t
let quorum c = c.n - c.t
let majority c = (c.n / 2) + 1
let has_majority_resilience c = 0 < c.t && 2 * c.t < c.n
let has_third_resilience c = 0 <= c.t && 3 * c.t < c.n

let validate_indulgent c =
  if not (has_majority_resilience c) then
    invalid_arg
      (Format.asprintf
         "indulgent consensus requires 0 < t < n/2, got n=%d t=%d" c.n c.t)

let validate_third c =
  if not (has_third_resilience c) then
    invalid_arg
      (Format.asprintf "A_{f+2} requires t < n/3, got n=%d t=%d" c.n c.t)

let processes c = Pid.all ~n:c.n
let equal a b = a.n = b.n && a.t = b.t
let pp ppf c = Format.fprintf ppf "(n=%d, t=%d)" c.n c.t
