(** Static system parameters of a run: the number of processes [n] and the
    resilience bound [t] (maximum number of processes that may crash).

    The paper works with three resilience regimes:
    - SCS algorithms (FloodSet): any [t < n] (its [t+1] lower bound needs
      [t <= n-2]);
    - indulgent / ES algorithms ([A_{t+2}], Hurfin-Raynal, Chandra-Toueg):
      [0 < t < n/2] — a majority of correct processes is necessary for any
      indulgent consensus algorithm;
    - the fast-eventual-decision algorithm [A_{f+2}] of Section 6:
      [t < n/3]. *)

type t = private { n : int; t : int }

val make : n:int -> t:int -> t
(** [make ~n ~t] is the configuration with [n] processes of which at most [t]
    may crash. Raises [Invalid_argument] unless [n >= 1] and [0 <= t < n]. *)

val n : t -> int
val t : t -> int

val quorum : t -> int
(** [quorum c] is [n - t], the number of round-[k] messages every process that
    completes round [k] is guaranteed to receive (t-resilience, Section
    1.2). *)

val majority : t -> int
(** [majority c] is the smallest integer strictly greater than [n/2]. *)

val has_majority_resilience : t -> bool
(** [0 < t < n/2]: the regime required by indulgent consensus ([A_{t+2}],
    Proposition 1). *)

val has_third_resilience : t -> bool
(** [0 <= t < n/3]: the regime required by [A_{f+2}] (Section 6). *)

val validate_indulgent : t -> unit
(** Raises [Invalid_argument] unless {!has_majority_resilience}. *)

val validate_third : t -> unit
(** Raises [Invalid_argument] unless {!has_third_resilience}. *)

val processes : t -> Pid.t list
(** All process ids [p1 .. pn]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
