(** Child-process primitives for the supervised sweep pool.

    {!Par} shards work across domains inside one process; this module is
    the process-boundary sibling: spawn a child with a pipe pair, signal
    it, and reap it without blocking. It deliberately stops below policy —
    heartbeats, retries and chaos live in [Mc.Supervise]; here is only the
    thin, total wrapper over [Unix] that the supervisor and its tests
    share.

    All functions are Unix-only (the repository does not target Windows)
    and safe to call from a process that has many children: waiting is
    per-pid and non-blocking by default, so one stalled child never hides
    another's exit. *)

type child

val pid : child -> int

val to_child : child -> Unix.file_descr
(** Write end wired to the child's stdin. *)

val from_child : child -> Unix.file_descr
(** Read end wired to the child's stdout. *)

type status =
  | Running
  | Exited of int  (** normal exit with this code *)
  | Signaled of int  (** killed by this signal *)

val pp_status : Format.formatter -> status -> unit

val spawn : prog:string -> args:string list -> child
(** Start [prog] with [args] (argv, including argv[0]), wiring a fresh
    pipe to its stdin and another from its stdout; stderr is inherited.
    Both parent-side descriptors have close-on-exec set, so a later
    sibling spawn cannot hold a dead worker's pipe open. *)

val fork : (in_channel -> out_channel -> unit) -> child
(** [fork f] forks; the child runs [f input output] over the pipe pair
    (input carries bytes from the parent, output back to it) and
    [Stdlib.exit]s with 0 when [f] returns, 125 when it raises. For tests
    that need a scriptable worker without an executable on disk. *)

val signal : child -> int -> unit
(** Send a signal, ignoring [ESRCH] (the child already exited — with
    non-blocking reaping that race is routine, not an error). *)

val poll : child -> status
(** Non-blocking: [Running] if the child has not exited yet, otherwise its
    exit status. Idempotent — the status is cached once reaped, so callers
    may poll freely without losing the exit code to a second [waitpid]. *)

val wait : child -> status
(** Block until the child exits (or return the cached status). *)

val kill_and_reap : child -> status
(** SIGKILL then blocking reap: the supervisor's last resort for a stalled
    worker. Also closes both pipe ends. *)

val close_pipes : child -> unit
(** Close both parent-side descriptors, ignoring [EBADF] on
    already-closed ones. Idempotent. *)
