(** Proposal and decision values.

    The paper assumes "the set of proposal values in a run is a totally
    ordered set" (assumption 4 of Section 3), e.g. by tagging each proposal
    with the proposer's index. We represent values as integers, which gives
    the total order directly; {!tag} implements the paper's tagging scheme
    when distinct proposals must be guaranteed distinct.

    Binary consensus (Section 2's lower-bound setting) uses {!zero} and
    {!one}. *)

type t
(** A consensus value. *)

val of_int : int -> t
val to_int : t -> int

val zero : t
(** The binary value 0. *)

val one : t
(** The binary value 1. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t

val minimum : t list -> t
(** [minimum vs] is the least element of [vs]. Raises [Invalid_argument] on
    the empty list. *)

val tag : proposer:Pid.t -> n:int -> int -> t
(** [tag ~proposer ~n raw] makes proposals totally ordered and distinct across
    proposers, as in the paper's assumption 4: the value is [raw * n + (i-1)]
    for proposer [p_i], so comparing tagged values compares [raw] first and
    breaks ties by proposer id. *)

val untag : n:int -> t -> int * Pid.t
(** Inverse of {!tag}: recovers [(raw, proposer)]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
