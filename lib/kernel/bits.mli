(** Word-level bit counting, shared by the int- and array-backed
    {!Bitset} variants.

    Both are branch-light: a 16-bit lookup table replaces the Kernighan
    clear-lowest-bit loop (whose cost grows with the population), so
    dense process sets — the common case once every process has sent —
    cost the same as sparse ones. *)

val popcount : int -> int
(** Number of set bits. Defined on every [int], including negative ones
    (all [Sys.int_size] bits are counted). *)

val ctz : int -> int
(** Index of the lowest set bit, counting from 0. [ctz 0] is
    [Sys.int_size]. *)
