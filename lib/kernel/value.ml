type t = int

let of_int v = v
let to_int v = v
let zero = 0
let one = 1
let compare = Int.compare
let equal = Int.equal
let min = Stdlib.min

let minimum = function
  | [] -> invalid_arg "Value.minimum: empty list"
  | v :: vs -> List.fold_left min v vs

let tag ~proposer ~n raw =
  if n < 1 then invalid_arg "Value.tag: n must be positive";
  (raw * n) + (Pid.to_int proposer - 1)

let untag ~n v =
  if n < 1 then invalid_arg "Value.untag: n must be positive";
  (v / n, Pid.of_int ((v mod n) + 1))

let pp = Format.pp_print_int
let to_string = string_of_int

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
