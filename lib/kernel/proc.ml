type status =
  | Running
  | Exited of int
  | Signaled of int

type child = {
  c_pid : int;
  c_to : Unix.file_descr;
  c_from : Unix.file_descr;
  mutable reaped : status option;
}

let pid c = c.c_pid
let to_child c = c.c_to
let from_child c = c.c_from

let pp_status ppf = function
  | Running -> Format.pp_print_string ppf "running"
  | Exited code -> Format.fprintf ppf "exited %d" code
  | Signaled sg -> Format.fprintf ppf "signaled %d" sg

let status_of_process_status = function
  | Unix.WEXITED code -> Exited code
  | Unix.WSIGNALED sg -> Signaled sg
  (* waitpid without WUNTRACED never reports stops, but be total. *)
  | Unix.WSTOPPED _ -> Running

let spawn ~prog ~args =
  let to_read, to_write = Unix.pipe ~cloexec:false () in
  let from_read, from_write = Unix.pipe ~cloexec:false () in
  Unix.set_close_on_exec to_write;
  Unix.set_close_on_exec from_read;
  let pid =
    Unix.create_process prog (Array.of_list args) to_read from_write
      Unix.stderr
  in
  Unix.close to_read;
  Unix.close from_write;
  { c_pid = pid; c_to = to_write; c_from = from_read; reaped = None }

let fork f =
  let to_read, to_write = Unix.pipe ~cloexec:false () in
  let from_read, from_write = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
      Unix.close to_write;
      Unix.close from_read;
      let input = Unix.in_channel_of_descr to_read in
      let output = Unix.out_channel_of_descr from_write in
      let code =
        match f input output with
        | () -> 0
        | exception e ->
            Printf.eprintf "Proc.fork child: %s\n%!" (Printexc.to_string e);
            125
      in
      (try flush output with Sys_error _ -> ());
      Stdlib.exit code
  | pid ->
      Unix.close to_read;
      Unix.close from_write;
      Unix.set_close_on_exec to_write;
      Unix.set_close_on_exec from_read;
      { c_pid = pid; c_to = to_write; c_from = from_read; reaped = None }

let signal c sg =
  match c.reaped with
  | Some _ -> ()
  | None -> (
      try Unix.kill c.c_pid sg
      with Unix.Unix_error (Unix.ESRCH, _, _) -> ())

let reap c flags =
  match c.reaped with
  | Some st -> st
  | None -> (
      match Unix.waitpid flags c.c_pid with
      | 0, _ -> Running
      | _, st ->
          let st = status_of_process_status st in
          (match st with Running -> () | _ -> c.reaped <- Some st);
          st
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> Running)

let poll c = reap c [ Unix.WNOHANG ]

let rec wait c =
  match reap c [] with Running -> wait c | st -> st

let close_one fd =
  try Unix.close fd with Unix.Unix_error (Unix.EBADF, _, _) -> ()

let close_pipes c =
  close_one c.c_to;
  close_one c.c_from

let kill_and_reap c =
  signal c Sys.sigkill;
  let st = wait c in
  close_pipes c;
  st
