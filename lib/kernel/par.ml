let default_jobs () = Domain.recommended_domain_count ()

type worker_stat = { tasks : int; busy_s : float; idle_s : float }

(* Per-worker tallies are plain mutable records written only by their own
   domain; the caller reads them after every domain has been joined, so no
   synchronization beyond the join itself is needed. *)
type tally = { mutable t_tasks : int; mutable t_busy : float }

let map_tasks ?report ~jobs tasks =
  let n = Array.length tasks in
  (* Oversubscribing a CPU-bound pool only adds minor-GC barriers (every
     domain participates in each stop-the-world minor collection), so the
     requested parallelism is capped at what the hardware can actually run
     simultaneously. *)
  let jobs = min jobs (default_jobs ()) in
  if jobs <= 1 || n <= 1 then begin
    match report with
    | None -> Array.map (fun task -> task ()) tasks
    | Some report ->
        (* Serial path: the calling domain is the single worker; timing the
           whole map keeps the per-task cost identical to the untimed path. *)
        let t0 = Unix.gettimeofday () in
        let results = Array.map (fun task -> task ()) tasks in
        let busy = Unix.gettimeofday () -. t0 in
        report [| { tasks = n; busy_s = busy; idle_s = 0. } |];
        results
  end
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let workers = min jobs n in
    let tallies =
      if report = None then [||]
      else Array.init workers (fun _ -> { t_tasks = 0; t_busy = 0. })
    in
    (* Each domain claims tasks off the shared index until none remain;
       coarse tasks make the single atomic per task negligible. Timing is
       only collected when a report was requested, so the untimed hot path
       performs no clock reads. *)
    let rec drain () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (tasks.(i) ());
        drain ()
      end
    in
    let rec drain_timed tally =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let t0 = Unix.gettimeofday () in
        results.(i) <- Some (tasks.(i) ());
        tally.t_busy <- tally.t_busy +. (Unix.gettimeofday () -. t0);
        tally.t_tasks <- tally.t_tasks + 1;
        drain_timed tally
      end
    in
    let run_worker w =
      if tallies = [||] then drain () else drain_timed tallies.(w)
    in
    let started = Unix.gettimeofday () in
    let helpers =
      Array.init (workers - 1) (fun k -> Domain.spawn (fun () -> run_worker (k + 1)))
    in
    let first_exn = ref None in
    let record e = if !first_exn = None then first_exn := Some e in
    (try run_worker 0 with e -> record e);
    Array.iter
      (fun d -> try Domain.join d with e -> record e)
      helpers;
    let wall = Unix.gettimeofday () -. started in
    (match !first_exn with Some e -> raise e | None -> ());
    (match report with
    | None -> ()
    | Some report ->
        report
          (Array.map
             (fun tl ->
               {
                 tasks = tl.t_tasks;
                 busy_s = tl.t_busy;
                 idle_s = Float.max 0. (wall -. tl.t_busy);
               })
             tallies));
    Array.map
      (function Some v -> v | None -> assert false (* all indices claimed *))
      results
  end
