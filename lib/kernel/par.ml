let default_jobs () = Domain.recommended_domain_count ()

let map_tasks ~jobs tasks =
  let n = Array.length tasks in
  (* Oversubscribing a CPU-bound pool only adds minor-GC barriers (every
     domain participates in each stop-the-world minor collection), so the
     requested parallelism is capped at what the hardware can actually run
     simultaneously. *)
  let jobs = min jobs (default_jobs ()) in
  if jobs <= 1 || n <= 1 then Array.map (fun task -> task ()) tasks
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* Each domain claims tasks off the shared index until none remain;
       coarse tasks make the single atomic per task negligible. *)
    let rec drain () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (tasks.(i) ());
        drain ()
      end
    in
    let helpers =
      Array.init (min jobs n - 1) (fun _ -> Domain.spawn drain)
    in
    let first_exn = ref None in
    let record e = if !first_exn = None then first_exn := Some e in
    (try drain () with e -> record e);
    Array.iter
      (fun d -> try Domain.join d with e -> record e)
      helpers;
    (match !first_exn with Some e -> raise e | None -> ());
    Array.map
      (function Some v -> v | None -> assert false (* all indices claimed *))
      results
  end
