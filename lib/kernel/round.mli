(** Round numbers.

    Computation proceeds in rounds numbered from 1 (Section 1.2). A round has
    a send phase followed by a receive phase; round arithmetic appears all
    over the complexity claims ([t+1], [t+2], [2t+2], [k+f+2], ...), so we
    keep rounds abstract to avoid mixing them up with other integers. *)

type t
(** A round number, always >= 1. *)

val first : t
(** Round 1, the first round of every run. *)

val of_int : int -> t
(** Raises [Invalid_argument] when the argument is < 1. *)

val to_int : t -> int
val succ : t -> t

val pred : t -> t option
(** [pred r] is the previous round, or [None] for round 1. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val max : t -> t -> t

val add : t -> int -> t
(** [add r d] is round [r + d]; raises [Invalid_argument] if the result would
    be < 1. *)

val diff : t -> t -> int
(** [diff a b] is [to_int a - to_int b]. *)

val iter_up_to : t -> f:(t -> unit) -> unit
(** [iter_up_to r ~f] applies [f] to rounds [1, 2, ..., r] in order. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
