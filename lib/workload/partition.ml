open Kernel

let blocks config =
  let n = Config.n config in
  let half = (n + 1) / 2 in
  let a = List.map Pid.of_int (Listx.range 1 half) in
  let b = List.map Pid.of_int (Listx.range (half + 1) n) in
  (a, b)

let split config ~until =
  let a, b = blocks config in
  let quorum = Config.quorum config in
  if List.length a < quorum || List.length b < quorum then
    invalid_arg
      (Format.asprintf
         "Partition.split: blocks of %d and %d cannot each deliver %d \
          current-round messages; needs t >= n/2"
         (List.length a) (List.length b) quorum);
  if until < 2 then invalid_arg "Partition.split: until must be >= 2";
  let cross =
    List.map (fun (x, y) -> (x, y, Round.of_int until)) (Listx.cartesian a b)
    @ List.map (fun (y, x) -> (y, x, Round.of_int until)) (Listx.cartesian b a)
  in
  let plan = { Sim.Schedule.crashes = []; lost = []; delayed = cross } in
  Sim.Schedule.make ~model:Sim.Model.Es ~gst:(Round.of_int until)
    (List.map (fun _round -> plan) (Listx.range 1 (until - 1)))
