open Kernel

let lose_to_all ~n victim =
  List.map (fun dst -> (victim, dst)) (Pid.others ~n victim)

let lose_to_all_but ~n victim ~keep =
  List.filter_map
    (fun dst -> if Pid.equal dst keep then None else Some (victim, dst))
    (Pid.others ~n victim)

let chain config =
  let n = Config.n config and t = Config.t config in
  let plan_for k =
    let victim = Pid.of_int k in
    let keep = Pid.of_int (k + 1) in
    {
      Sim.Schedule.crashes = [ victim ];
      lost = lose_to_all_but ~n victim ~keep;
      delayed = [];
    }
  in
  Sim.Schedule.make ~model:Sim.Model.Es ~gst:Round.first
    (List.map plan_for (Listx.range 1 t))

let silent_crashes config ~rounds =
  let n = Config.n config in
  let horizon =
    List.fold_left (fun acc r -> max acc (Round.to_int r)) 0 rounds
  in
  let victims = List.mapi (fun i r -> (Pid.of_int (i + 1), r)) rounds in
  let plan_for k =
    match
      List.filter (fun (_, r) -> Round.to_int r = k) victims
    with
    | [] -> Sim.Schedule.empty_plan
    | crashing ->
        {
          Sim.Schedule.crashes = List.map fst crashing;
          lost = List.concat_map (fun (v, _) -> lose_to_all ~n v) crashing;
          delayed = [];
        }
  in
  Sim.Schedule.make ~model:Sim.Model.Es ~gst:Round.first
    (List.map plan_for (Listx.range 1 horizon))

let coordinator_killer config ~phase_rounds =
  if phase_rounds < 1 then
    invalid_arg "Cascade.coordinator_killer: phases need at least one round";
  let t = Config.t config in
  let rounds =
    List.map
      (fun phase -> Round.of_int ((phase * phase_rounds) + 1))
      (Listx.range 0 (t - 1))
  in
  silent_crashes config ~rounds

let leader_killer config ~f ~stride ~start =
  if f > Config.t config then
    invalid_arg "Cascade.leader_killer: more crashes than t";
  if stride < 1 then invalid_arg "Cascade.leader_killer: stride must be >= 1";
  let rounds =
    List.map
      (fun i -> Round.add start (i * stride))
      (Listx.range 0 (f - 1))
  in
  (* silent_crashes kills the lowest ids first, which are exactly the
     successive min-id leaders. *)
  silent_crashes config ~rounds

let minority_keeper config ~f =
  let n = Config.n config and t = Config.t config in
  if f < 1 || f > t then
    invalid_arg "Cascade.minority_keeper: needs 1 <= f <= t";
  let keep_of r =
    if r = 1 then List.map Pid.of_int (Listx.range 2 (t + 2))
    else [ Pid.of_int (r + 1) ]
  in
  let plan_for r =
    let victim = Pid.of_int r in
    let keep = keep_of r in
    {
      Sim.Schedule.crashes = [ victim ];
      lost =
        List.filter
          (fun (_, dst) -> not (List.exists (Pid.equal dst) keep))
          (lose_to_all ~n victim);
      delayed = [];
    }
  in
  Sim.Schedule.make ~model:Sim.Model.Es ~gst:Round.first
    (List.map plan_for (Listx.range 1 f))

let split_brain config ~k ~f =
  let n = Config.n config and t = Config.t config in
  if f > t then invalid_arg "Cascade.split_brain: f exceeds t";
  let low_block = List.map Pid.of_int (Listx.range 1 (t + 1)) in
  let high_block = List.map Pid.of_int (Listx.range (t + 2) n) in
  let p1 = Pid.of_int 1 in
  let prefix_plan round =
    ignore round;
    {
      Sim.Schedule.crashes = [];
      lost = [];
      delayed =
        List.map (fun dst -> (p1, dst, Round.of_int (k + 1))) high_block;
    }
  in
  let crash_plan i =
    (* Round k+i: p_i crashes, delivering only to the rest of the low
       block. *)
    let victim = Pid.of_int i in
    let keep =
      List.filter (fun p -> Pid.compare p victim > 0) low_block
    in
    {
      Sim.Schedule.crashes = [ victim ];
      lost =
        List.filter
          (fun (_, dst) -> not (List.exists (Pid.equal dst) keep))
          (lose_to_all ~n victim);
      delayed = [];
    }
  in
  let plans =
    List.map prefix_plan (Listx.range 1 k)
    @ List.map crash_plan (Listx.range 1 f)
  in
  Sim.Schedule.make ~model:Sim.Model.Es ~gst:(Round.of_int (k + 1)) plans

let split_then_minority config ~k ~f =
  let prefix = Sim.Schedule.plans (split_brain config ~k ~f:0) in
  let crashes =
    if f = 0 then [] else Sim.Schedule.plans (minority_keeper config ~f)
  in
  Sim.Schedule.make ~model:Sim.Model.Es
    ~gst:(Kernel.Round.of_int (k + 1))
    (prefix @ crashes)

let all_named config =
  let t = Config.t config in
  [
    ("chain", chain config);
    ( "silent-prefix",
      silent_crashes config
        ~rounds:(List.map Round.of_int (Listx.range 1 t)) );
    ("coordinator-killer/2", coordinator_killer config ~phase_rounds:2);
    ("coordinator-killer/4", coordinator_killer config ~phase_rounds:4);
  ]
