(** Network-partition schedules: two blocks of processes whose cross-block
    messages are all delayed until a (late) gst.

    Legal in ES only when each block can feed its members the [n - t]
    current-round messages t-resilience demands, i.e. when both blocks have
    at least [n - t] members — which is possible exactly when [t >= n/2],
    the regime the paper excludes for indulgent consensus. Experiment E9
    uses this to make the naive-quorum variant of CT decide differently on
    the two sides: the executable content of "indulgent consensus needs a
    majority of correct processes" (reference [2]). *)

open Kernel

val split : Config.t -> until:int -> Sim.Schedule.t
(** Processes [p_1 .. p_{ceil(n/2)}] versus the rest; every cross-block
    message of rounds [1 .. until - 1] is delayed to round [until]; gst is
    [until]. Raises [Invalid_argument] when a block would be smaller than
    [n - t] (the schedule would violate t-resilience). *)

val blocks : Config.t -> Pid.t list * Pid.t list
(** The two blocks {!split} uses. *)
