open Kernel

type outcome = {
  worst_round : int;
  worst_schedule : Sim.Schedule.t option;
  runs : int;
  violations : (Sim.Schedule.t * Sim.Props.violation list) list;
}

let empty = { worst_round = 0; worst_schedule = None; runs = 0; violations = [] }

(* One run folded into the outcome; [bump]/[observe_decision] are the
   caller's progress hooks. *)
let fold_run ~check ~algo ~config ~proposals ~bump ~observe_decision acc
    schedule =
  let trace = Sim.Runner.run algo config ~proposals schedule in
  let violations =
    match check with
    | `Full -> Sim.Props.check trace
    | `Safety_only -> Sim.Props.check_agreement trace
    | `None -> []
  in
  bump (List.length violations);
  let acc =
    match violations with
    | [] -> acc
    | vs -> { acc with violations = (schedule, vs) :: acc.violations }
  in
  let acc = { acc with runs = acc.runs + 1 } in
  match Sim.Trace.global_decision_round trace with
  | Some r ->
      observe_decision (Round.to_int r);
      if Round.to_int r > acc.worst_round then
        {
          acc with
          worst_round = Round.to_int r;
          worst_schedule = Some schedule;
        }
      else acc
  | None -> acc

let metric_hooks metrics =
  match metrics with
  | None -> (ignore, ignore)
  | Some m ->
      let runs = Obs.Metrics.counter m "search.runs" in
      let violations = Obs.Metrics.counter m "search.violations" in
      let decision = Obs.Metrics.histogram m "search.decision_round" in
      ( (fun n_violations ->
          Obs.Metrics.incr runs;
          Obs.Metrics.incr ~by:n_violations violations),
        fun r -> Obs.Metrics.observe decision (float_of_int r) )

(* Fold the shard outcomes in enumeration order. The serial fold conses
   violations, making the final list the reverse of enumeration order;
   prepending shard lists in shard order rebuilds exactly that. The worst
   schedule stays the first one attaining the overall worst round because
   updates are strict within shards and the fold is left-to-right. *)
let merge_shards parts =
  List.fold_left
    (fun acc part ->
      {
        worst_round = max acc.worst_round part.worst_round;
        worst_schedule =
          (if part.worst_round > acc.worst_round then part.worst_schedule
           else acc.worst_schedule);
        runs = acc.runs + part.runs;
        violations = part.violations @ acc.violations;
      })
    empty parts

let over ?(check = `Full) ?(jobs = 1) ?metrics ~algo ~config ~proposals
    schedules =
  if jobs <= 1 then begin
    let bump, observe_decision = metric_hooks metrics in
    Seq.fold_left
      (fold_run ~check ~algo ~config ~proposals ~bump ~observe_decision)
      empty schedules
  end
  else begin
    (* Shard the (finite) sequence into [jobs] contiguous slices; workers
       touch no shared state — metrics are reported once at the end, in
       enumeration order, from the calling domain. *)
    let scheds = Array.of_seq schedules in
    let total = Array.length scheds in
    let jobs = max 1 (min jobs total) in
    let slice k =
      (* Spread the remainder over the first slices: sizes differ by at
         most one. *)
      let base = total / jobs and rem = total mod jobs in
      let lo = (k * base) + min k rem in
      let hi = lo + base + (if k < rem then 1 else 0) in
      (lo, hi)
    in
    let tasks =
      Array.init jobs (fun k () ->
          let lo, hi = slice k in
          let decisions = ref [] in
          let acc = ref empty in
          for i = lo to hi - 1 do
            acc :=
              fold_run ~check ~algo ~config ~proposals ~bump:ignore
                ~observe_decision:(fun r -> decisions := r :: !decisions)
                !acc scheds.(i)
          done;
          (!acc, List.rev !decisions))
    in
    let parts = Array.to_list (Par.map_tasks ~jobs tasks) in
    let outcome = merge_shards (List.map fst parts) in
    (match metrics with
    | None -> ()
    | Some m ->
        Obs.Metrics.incr ~by:outcome.runs (Obs.Metrics.counter m "search.runs");
        Obs.Metrics.incr
          ~by:
            (List.fold_left
               (fun acc (_, vs) -> acc + List.length vs)
               0 outcome.violations)
          (Obs.Metrics.counter m "search.violations");
        let decision = Obs.Metrics.histogram m "search.decision_round" in
        List.iter
          (fun (_, ds) ->
            List.iter
              (fun r -> Obs.Metrics.observe decision (float_of_int r))
              ds)
          parts);
    outcome
  end

let random_stream ~seed ~samples make =
  let rng = Rng.create ~seed in
  Seq.init samples (fun _ -> make rng)

let random_synchronous ?(samples = 300) ?(with_delays = false) ?metrics ~seed
    ~algo ~config ~proposals () =
  let make rng =
    if with_delays then Random_runs.synchronous_with_delays rng config ()
    else Random_runs.synchronous rng config ()
  in
  over ?metrics ~algo ~config ~proposals (random_stream ~seed ~samples make)

let random_es ?(samples = 300) ?(gst = 4) ?metrics ~seed ~algo ~config
    ~proposals () =
  let make rng = Random_runs.eventually_synchronous rng config ~gst () in
  over ?metrics ~algo ~config ~proposals (random_stream ~seed ~samples make)
