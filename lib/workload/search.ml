open Kernel

type outcome = {
  worst_round : int;
  worst_schedule : Sim.Schedule.t option;
  runs : int;
  violations : (Sim.Schedule.t * Sim.Props.violation list) list;
}

let empty = { worst_round = 0; worst_schedule = None; runs = 0; violations = [] }

let over ?(check = `Full) ?metrics ~algo ~config ~proposals schedules =
  let bump, observe_decision =
    match metrics with
    | None -> (ignore, ignore)
    | Some m ->
        let runs = Obs.Metrics.counter m "search.runs" in
        let violations = Obs.Metrics.counter m "search.violations" in
        let decision = Obs.Metrics.histogram m "search.decision_round" in
        ( (fun n_violations ->
            Obs.Metrics.incr runs;
            Obs.Metrics.incr ~by:n_violations violations),
          fun r -> Obs.Metrics.observe decision (float_of_int r) )
  in
  Seq.fold_left
    (fun acc schedule ->
      let trace = Sim.Runner.run algo config ~proposals schedule in
      let violations =
        match check with
        | `Full -> Sim.Props.check trace
        | `Safety_only -> Sim.Props.check_agreement trace
        | `None -> []
      in
      bump (List.length violations);
      let acc =
        match violations with
        | [] -> acc
        | vs -> { acc with violations = (schedule, vs) :: acc.violations }
      in
      let acc = { acc with runs = acc.runs + 1 } in
      match Sim.Trace.global_decision_round trace with
      | Some r ->
          observe_decision (Round.to_int r);
          if Round.to_int r > acc.worst_round then
            {
              acc with
              worst_round = Round.to_int r;
              worst_schedule = Some schedule;
            }
          else acc
      | None -> acc)
    empty schedules

let random_stream ~seed ~samples make =
  let rng = Rng.create ~seed in
  Seq.init samples (fun _ -> make rng)

let random_synchronous ?(samples = 300) ?(with_delays = false) ?metrics ~seed
    ~algo ~config ~proposals () =
  let make rng =
    if with_delays then Random_runs.synchronous_with_delays rng config ()
    else Random_runs.synchronous rng config ()
  in
  over ?metrics ~algo ~config ~proposals (random_stream ~seed ~samples make)

let random_es ?(samples = 300) ?(gst = 4) ?metrics ~seed ~algo ~config
    ~proposals () =
  let make rng = Random_runs.eventually_synchronous rng config ~gst () in
  over ?metrics ~algo ~config ~proposals (random_stream ~seed ~samples make)
