(** Random schedule generators — all produce schedules that validate against
    their model by construction (a fact the test suite re-checks).

    Synchronous runs need no care: with at most [t] crashes in total, any
    pattern of crash rounds and per-receiver crash-round losses satisfies
    t-resilience automatically. Asynchronous (ES) runs do need care: each
    receiver must still see at least [n - t] current-round messages every
    round, so the generators bound the number of messages withheld from any
    receiver by the round's slack. *)

open Kernel

val synchronous :
  Rng.t -> Config.t -> ?max_crashes:int -> ?horizon:int -> unit -> Sim.Schedule.t
(** A random synchronous schedule: up to [max_crashes] (default [t])
    processes crash at random rounds within [horizon] (default [t + 3]);
    each victim's crash-round message reaches a random subset of the others
    and is lost to the rest. *)

val with_omissions :
  Rng.t ->
  Config.t ->
  ?faults:Sim.Model.faults ->
  ?omit_budget:int ->
  ?max_crashes:int ->
  ?horizon:int ->
  unit ->
  Sim.Schedule.t
(** A random synchronous schedule with declared omission faults: the
    design threshold [t] is split into [(t_crash, t_omit)] per the fault
    menu (default [Mixed] with [omit_budget = 1], clamped to [t]), up to
    [t_crash] crashes land as in {!synchronous}, and 1..[t_omit]
    processes disjoint from the victims are declared send- or
    receive-omitters whose licensed losses are sprinkled across the
    horizon. The schedule carries the explicit budget, so
    {!Sim.Schedule.validate} checks it under the soundness rule
    [t_crash + t_omit <= t]. *)

val synchronous_with_delays :
  Rng.t -> Config.t -> ?max_crashes:int -> ?horizon:int -> unit -> Sim.Schedule.t
(** Like {!synchronous}, but part of each victim's crash-round messages are
    {e delayed} rather than lost (footnote 5) — still a synchronous run. *)

val eventually_synchronous :
  Rng.t ->
  Config.t ->
  ?max_crashes:int ->
  gst:int ->
  ?max_delay:int ->
  unit ->
  Sim.Schedule.t
(** A random ES schedule with the given gst: before gst every receiver
    misses up to [t] random current-round messages (minus those already
    missing to crashes), each delayed by 1..[max_delay] rounds (or lost when
    the sender is faulty and a coin says so); from gst on the run is
    synchronous. Crashes happen at random rounds up to [gst + 2]. *)

val dls_basic :
  Rng.t ->
  Config.t ->
  ?max_crashes:int ->
  gst:int ->
  ?loss_rate_percent:int ->
  unit ->
  Sim.Schedule.t
(** A random schedule of the DLS fail-stop basic round model (Section 1.4):
    before [gst] every message is independently lost with the given
    probability (default 30%) — no t-resilience, no reliable channels —
    and from [gst] on rounds are synchronous with random crash-round
    losses. *)

val synchronous_after :
  Rng.t ->
  Config.t ->
  k:int ->
  f:int ->
  ?stall_low_ids:bool ->
  unit ->
  Sim.Schedule.t
(** The Section-6 shape: asynchronous for rounds [1..k] (maximal legal
    withholding, biased against low-id senders when [stall_low_ids], which
    stalls min-id leader oracles), then synchronous with exactly [f] crashes
    in rounds [k+1 ..]. *)
