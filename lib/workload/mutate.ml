open Kernel

(* Every operator edits the plan list of a parsed schedule and rebuilds it
   with [Sim.Schedule.make]; [mutate] then re-validates against the model
   and falls back to another operator draw when the edit was illegal. The
   operators never need to be legality-aware themselves, which keeps them
   simple and lets the validator stay the single source of truth. *)

type op =
  | Add_crash
  | Drop_crash
  | Move_crash
  | Flip_fate
  | Drop_loss
  | Drop_delay
  | Add_delay
  | Add_loss
  | Shift_gst
  | Add_omitter
  | Drop_omitter
  | Add_omit_loss

let all_ops =
  [
    Add_crash;
    Drop_crash;
    Move_crash;
    Flip_fate;
    Drop_loss;
    Drop_delay;
    Add_delay;
    Add_loss;
    Shift_gst;
    Add_omitter;
    Drop_omitter;
    Add_omit_loss;
  ]

let pp_op ppf op =
  Format.pp_print_string ppf
    (match op with
    | Add_crash -> "add-crash"
    | Drop_crash -> "drop-crash"
    | Move_crash -> "move-crash"
    | Flip_fate -> "flip-fate"
    | Drop_loss -> "drop-loss"
    | Drop_delay -> "drop-delay"
    | Add_delay -> "add-delay"
    | Add_loss -> "add-loss"
    | Shift_gst -> "shift-gst"
    | Add_omitter -> "add-omitter"
    | Drop_omitter -> "drop-omitter"
    | Add_omit_loss -> "add-omit-loss")

(* Plans as a mutable-length list: pad so round [k] exists, then edit it. *)
let pad plans k =
  let len = List.length plans in
  if len >= k then plans
  else plans @ List.init (k - len) (fun _ -> Sim.Schedule.empty_plan)

let update_round plans k f =
  List.mapi
    (fun i (p : Sim.Schedule.plan) -> if i = k - 1 then f p else p)
    (pad plans k)

(* Every (round, entry) pair of one fate kind, for uniform picking. *)
let losses plans =
  List.concat
    (List.mapi
       (fun i (p : Sim.Schedule.plan) ->
         List.map (fun e -> (i + 1, e)) p.Sim.Schedule.lost)
       plans)

let delays plans =
  List.concat
    (List.mapi
       (fun i (p : Sim.Schedule.plan) ->
         List.map (fun e -> (i + 1, e)) p.Sim.Schedule.delayed)
       plans)

let crashes plans =
  List.concat
    (List.mapi
       (fun i (p : Sim.Schedule.plan) ->
         List.map (fun v -> (i + 1, v)) p.Sim.Schedule.crashes)
       plans)

(* Remove a victim's crash from round [k] together with the same-round fate
   entries it justified — leaving them would orphan losses on a correct
   sender, which no model admits. *)
let remove_crash plans k victim =
  update_round plans k (fun p ->
      {
        Sim.Schedule.crashes =
          List.filter (fun v -> not (Pid.equal v victim)) p.Sim.Schedule.crashes;
        lost =
          List.filter
            (fun (src, _) -> not (Pid.equal src victim))
            p.Sim.Schedule.lost;
        delayed =
          List.filter
            (fun (src, _, _) -> not (Pid.equal src victim))
            p.Sim.Schedule.delayed;
      })

let apply_op rng config op schedule =
  let n = Config.n config and t = Config.t config in
  let plans = Sim.Schedule.plans schedule in
  let horizon = max 1 (Sim.Schedule.horizon schedule) in
  let gst = Round.to_int (Sim.Schedule.gst schedule) in
  let model = Sim.Schedule.model schedule in
  let omitters0 = Sim.Schedule.omitters schedule in
  let budget = Sim.Schedule.budget schedule in
  let rebuild ?(gst = gst) ?(omitters = omitters0) plans =
    Sim.Schedule.make ~omitters ?budget ~model ~gst:(Round.of_int gst) plans
  in
  let random_pid () = Pid.of_int (Rng.int_in rng 1 n) in
  match op with
  | Add_crash ->
      if Sim.Schedule.crash_count schedule >= t then None
      else begin
        let alive =
          List.filter
            (fun p -> Sim.Schedule.crash_round schedule p = None)
            (Config.processes config)
        in
        match Rng.pick_opt rng alive with
        | None -> None
        | Some victim ->
            let k = Rng.int_in rng 1 (horizon + 1) in
            let kept = Rng.subset rng (Pid.others ~n victim) in
            let lost =
              List.filter_map
                (fun dst ->
                  if List.exists (Pid.equal dst) kept then None
                  else Some (victim, dst))
                (Pid.others ~n victim)
            in
            Some
              (rebuild
                 (update_round plans k (fun p ->
                      {
                        p with
                        Sim.Schedule.crashes =
                          victim :: p.Sim.Schedule.crashes;
                        lost = lost @ p.Sim.Schedule.lost;
                      })))
      end
  | Drop_crash -> (
      match Rng.pick_opt rng (crashes plans) with
      | None -> None
      | Some (k, victim) -> Some (rebuild (remove_crash plans k victim)))
  | Move_crash -> (
      match Rng.pick_opt rng (crashes plans) with
      | None -> None
      | Some (k, victim) ->
          let k' = Rng.int_in rng 1 (horizon + 1) in
          if k' = k then None
          else
            let plans = remove_crash plans k victim in
            Some
              (rebuild
                 (update_round plans k' (fun p ->
                      {
                        p with
                        Sim.Schedule.crashes = victim :: p.Sim.Schedule.crashes;
                      }))))
  | Flip_fate -> (
      let flips =
        List.map (fun e -> `To_delay e) (losses plans)
        @ List.map (fun e -> `To_loss e) (delays plans)
      in
      match Rng.pick_opt rng flips with
      | None -> None
      | Some (`To_delay (k, (src, dst))) ->
          let until = Round.of_int (k + 1 + Rng.int rng 3) in
          Some
            (rebuild
               (update_round plans k (fun p ->
                    {
                      p with
                      Sim.Schedule.lost =
                        List.filter (fun e -> e <> (src, dst)) p.Sim.Schedule.lost;
                      delayed = (src, dst, until) :: p.Sim.Schedule.delayed;
                    })))
      | Some (`To_loss (k, (src, dst, until))) ->
          Some
            (rebuild
               (update_round plans k (fun p ->
                    {
                      p with
                      Sim.Schedule.delayed =
                        List.filter
                          (fun e -> e <> (src, dst, until))
                          p.Sim.Schedule.delayed;
                      lost = (src, dst) :: p.Sim.Schedule.lost;
                    }))))
  | Drop_loss -> (
      match Rng.pick_opt rng (losses plans) with
      | None -> None
      | Some (k, entry) ->
          Some
            (rebuild
               (update_round plans k (fun p ->
                    {
                      p with
                      Sim.Schedule.lost =
                        List.filter (fun e -> e <> entry) p.Sim.Schedule.lost;
                    }))))
  | Drop_delay -> (
      match Rng.pick_opt rng (delays plans) with
      | None -> None
      | Some (k, entry) ->
          Some
            (rebuild
               (update_round plans k (fun p ->
                    {
                      p with
                      Sim.Schedule.delayed =
                        List.filter
                          (fun e -> e <> entry)
                          p.Sim.Schedule.delayed;
                    }))))
  | Add_delay ->
      let k = Rng.int_in rng 1 horizon in
      let src = random_pid () in
      let dst = random_pid () in
      if Pid.equal src dst then None
      else
        let until = Round.of_int (k + 1 + Rng.int rng 3) in
        Some
          (rebuild
             (update_round plans k (fun p ->
                  {
                    p with
                    Sim.Schedule.delayed =
                      (src, dst, until) :: p.Sim.Schedule.delayed;
                  })))
  | Add_loss -> (
      (* Only a crashing sender's messages may be lost, so pick among
         crash-round victims. *)
      match Rng.pick_opt rng (crashes plans) with
      | None -> None
      | Some (k, victim) ->
          let dst = Rng.pick rng (Pid.others ~n victim) in
          Some
            (rebuild
               (update_round plans k (fun p ->
                    {
                      p with
                      Sim.Schedule.lost = (victim, dst) :: p.Sim.Schedule.lost;
                    }))))
  | Shift_gst ->
      let gst' = if Rng.bool rng then gst + 1 else gst - 1 in
      if gst' < 1 || gst' > horizon + 2 then None
      else Some (rebuild ~gst:gst' plans)
  | Add_omitter -> (
      (* Declare a currently-correct process an omitter; the validator
         rejects the candidate when the budget (or [t]) is exhausted. *)
      let correct =
        List.filter
          (fun p ->
            Sim.Schedule.crash_round schedule p = None
            && Sim.Schedule.omitter_class schedule p = None)
          (Config.processes config)
      in
      match Rng.pick_opt rng correct with
      | None -> None
      | Some culprit ->
          let cls =
            if Rng.bool rng then Sim.Model.Send_omit else Sim.Model.Recv_omit
          in
          Some (rebuild ~omitters:((culprit, cls) :: omitters0) plans))
  | Drop_omitter -> (
      (* The declaration leaves with every lost entry it licensed, like
         [remove_crash] — orphaned omission losses on a now-correct
         process would just be rejected. *)
      match Rng.pick_opt rng omitters0 with
      | None -> None
      | Some (culprit, cls) ->
          let licensed (src, dst) =
            match cls with
            | Sim.Model.Send_omit -> Pid.equal src culprit
            | Sim.Model.Recv_omit -> Pid.equal dst culprit
          in
          Some
            (rebuild
               ~omitters:
                 (List.filter
                    (fun (p, _) -> not (Pid.equal p culprit))
                    omitters0)
               (List.map
                  (fun (p : Sim.Schedule.plan) ->
                    {
                      p with
                      Sim.Schedule.lost =
                        List.filter
                          (fun e -> not (licensed e))
                          p.Sim.Schedule.lost;
                    })
                  plans)))
  | Add_omit_loss -> (
      (* Lose one more message an existing declaration licenses. *)
      match Rng.pick_opt rng omitters0 with
      | None -> None
      | Some (culprit, cls) ->
          let peer = Rng.pick rng (Pid.others ~n culprit) in
          let entry =
            match cls with
            | Sim.Model.Send_omit -> (culprit, peer)
            | Sim.Model.Recv_omit -> (peer, culprit)
          in
          let k = Rng.int_in rng 1 horizon in
          let p = List.nth (pad plans k) (k - 1) in
          if List.mem entry p.Sim.Schedule.lost then None
          else
            Some
              (rebuild
                 (update_round plans k (fun p ->
                      {
                        p with
                        Sim.Schedule.lost = entry :: p.Sim.Schedule.lost;
                      }))))

let mutate ?(tries = 16) rng config schedule =
  let rec attempt k =
    if k = 0 then schedule
    else
      let op = Rng.pick rng all_ops in
      match apply_op rng config op schedule with
      | None -> attempt (k - 1)
      | Some candidate -> (
          match Sim.Schedule.validate config candidate with
          | Ok () -> candidate
          | Error _ -> attempt (k - 1))
  in
  attempt tries

let generator ?(ops_per_run = 3) ~base config rng =
  let rec go k s = if k = 0 then s else go (k - 1) (mutate rng config s) in
  go (1 + Rng.int rng (max 1 ops_per_run)) base
