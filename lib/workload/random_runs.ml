open Kernel

type crash_plan = (Pid.t * int) list (* victim, round *)

let random_crashes rng config ~max_crashes ~horizon : crash_plan =
  let count = Rng.int_in rng 0 max_crashes in
  let victims = Rng.sample rng count (Config.processes config) in
  List.map (fun v -> (v, Rng.int_in rng 1 (max 1 horizon))) victims

let crashed_before crashes k =
  Listx.count (fun (_, r) -> r < k) crashes

let crashing_at crashes k = List.filter_map
    (fun (v, r) -> if r = k then Some v else None)
    crashes

let alive_at_start crashes config k =
  List.filter
    (fun p -> not (List.exists (fun (v, r) -> Pid.equal v p && r < k) crashes))
    (Config.processes config)

(* Synchronous runs: only crash-round messages are tampered with. [fate]
   decides what happens to each withheld copy. *)
let synchronous_like rng config ~max_crashes ~horizon ~fate =
  let crashes = random_crashes rng config ~max_crashes ~horizon in
  let n = Config.n config in
  let plan_for k =
    let victims = crashing_at crashes k in
    let lost = ref [] and delayed = ref [] in
    List.iter
      (fun victim ->
        List.iter
          (fun dst ->
            if Rng.bool rng then
              match fate rng k with
              | `Lost -> lost := (victim, dst) :: !lost
              | `Delayed until ->
                  delayed := (victim, dst, Round.of_int until) :: !delayed)
          (Pid.others ~n victim))
      victims;
    { Sim.Schedule.crashes = victims; lost = !lost; delayed = !delayed }
  in
  Sim.Schedule.make ~model:Sim.Model.Es ~gst:Round.first
    (List.map plan_for (Listx.range 1 horizon))

(* Omission-faulty synchronous runs. Crash victims and declared omitters
   stay disjoint (the budget buys distinct faulty processes), and every
   omission loss is licensed by a declaration, so the schedules validate by
   construction: a correct receiver loses at most (crashes so far +
   send-omitters) <= t senders per round, which keeps the ES quorum. *)
let with_omissions rng config ?(faults = Sim.Model.Mixed) ?(omit_budget = 1)
    ?max_crashes ?horizon () =
  let t = Config.t config in
  let t_crash, t_omit =
    match faults with
    | Sim.Model.Crash_only -> (t, 0)
    | Sim.Model.Send_omit_only | Sim.Model.Recv_omit_only ->
        (0, min omit_budget t)
    | Sim.Model.Mixed ->
        let o = min omit_budget t in
        (t - o, o)
  in
  let max_crashes = min (Option.value max_crashes ~default:t_crash) t_crash in
  let horizon = Option.value horizon ~default:(t + 3) in
  let crashes = random_crashes rng config ~max_crashes ~horizon in
  let n = Config.n config in
  let omitters =
    let non_victims =
      List.filter
        (fun p -> not (List.exists (fun (v, _) -> Pid.equal v p) crashes))
        (Config.processes config)
    in
    let count = if t_omit = 0 then 0 else Rng.int_in rng 1 t_omit in
    List.map
      (fun p ->
        let cls =
          match faults with
          | Sim.Model.Send_omit_only -> Sim.Model.Send_omit
          | Sim.Model.Recv_omit_only -> Sim.Model.Recv_omit
          | Sim.Model.Crash_only | Sim.Model.Mixed ->
              if Rng.bool rng then Sim.Model.Send_omit
              else Sim.Model.Recv_omit
        in
        (p, cls))
      (Rng.sample rng count non_victims)
  in
  let plan_for k =
    let victims = crashing_at crashes k in
    let lost = ref [] in
    List.iter
      (fun victim ->
        List.iter
          (fun dst -> if Rng.bool rng then lost := (victim, dst) :: !lost)
          (Pid.others ~n victim))
      victims;
    let alive = alive_at_start crashes config k in
    List.iter
      (fun (culprit, cls) ->
        if Rng.bool rng then
          List.iter
            (fun peer ->
              if (not (Pid.equal peer culprit)) && Rng.bool rng then
                let entry =
                  match cls with
                  | Sim.Model.Send_omit -> (culprit, peer)
                  | Sim.Model.Recv_omit -> (peer, culprit)
                in
                if not (List.mem entry !lost) then lost := entry :: !lost)
            alive)
      omitters;
    { Sim.Schedule.crashes = victims; lost = !lost; delayed = [] }
  in
  Sim.Schedule.make ~omitters
    ~budget:(Sim.Model.budget ~t_crash ~t_omit)
    ~model:Sim.Model.Es ~gst:Round.first
    (List.map plan_for (Listx.range 1 horizon))

let synchronous rng config ?max_crashes ?horizon () =
  let max_crashes = Option.value max_crashes ~default:(Config.t config) in
  let horizon = Option.value horizon ~default:(Config.t config + 3) in
  synchronous_like rng config ~max_crashes ~horizon ~fate:(fun _ _ -> `Lost)

let synchronous_with_delays rng config ?max_crashes ?horizon () =
  let max_crashes = Option.value max_crashes ~default:(Config.t config) in
  let horizon = Option.value horizon ~default:(Config.t config + 3) in
  synchronous_like rng config ~max_crashes ~horizon ~fate:(fun rng k ->
      if Rng.bool rng then `Lost else `Delayed (k + 1 + Rng.int rng 3))

(* Pre-gst rounds: withhold up to the t-resilience slack from each receiver. *)
let async_round rng config ~crashes ~k ~gst ~max_delay ~pick_withheld =
  let victims = crashing_at crashes k in
  let alive = alive_at_start crashes config k in
  let budget = Config.t config - crashed_before crashes k in
  let lost = ref [] and delayed = ref [] in
  List.iter
    (fun dst ->
      let candidates = List.filter (fun p -> not (Pid.equal p dst)) alive in
      let withheld = pick_withheld rng budget candidates in
      List.iter
        (fun src ->
          let faulty = List.exists (fun (v, _) -> Pid.equal v src) crashes in
          let may_lose = faulty && (k < gst || List.exists (Pid.equal src) victims) in
          if may_lose && Rng.bool rng then lost := (src, dst) :: !lost
          else
            delayed :=
              (src, dst, Round.of_int (k + 1 + Rng.int rng max_delay))
              :: !delayed)
        withheld)
    (List.filter
       (fun p ->
         not (List.exists (fun (v, r) -> Pid.equal v p && r <= k) crashes))
       (Config.processes config));
  { Sim.Schedule.crashes = victims; lost = !lost; delayed = !delayed }

let eventually_synchronous rng config ?max_crashes ~gst ?(max_delay = 3) () =
  let max_crashes = Option.value max_crashes ~default:(Config.t config) in
  let horizon = gst + 2 in
  let crashes = random_crashes rng config ~max_crashes ~horizon in
  let pick_withheld rng budget candidates =
    let count = if budget <= 0 then 0 else Rng.int_in rng 0 budget in
    Rng.sample rng count candidates
  in
  let plan_for k =
    if k < gst then
      async_round rng config ~crashes ~k ~gst ~max_delay ~pick_withheld
    else
      (* Synchronous round: only crash-round messages may be lost. *)
      let victims = crashing_at crashes k in
      let lost = ref [] in
      List.iter
        (fun victim ->
          List.iter
            (fun dst -> if Rng.bool rng then lost := (victim, dst) :: !lost)
            (Pid.others ~n:(Config.n config) victim))
        victims;
      { Sim.Schedule.crashes = victims; lost = !lost; delayed = [] }
  in
  Sim.Schedule.make ~model:Sim.Model.Es ~gst:(Round.of_int gst)
    (List.map plan_for (Listx.range 1 horizon))

let dls_basic rng config ?max_crashes ~gst ?(loss_rate_percent = 30) () =
  let max_crashes = Option.value max_crashes ~default:(Config.t config) in
  let horizon = gst + 1 in
  let crashes = random_crashes rng config ~max_crashes ~horizon in
  let n = Config.n config in
  let plan_for k =
    let victims = crashing_at crashes k in
    let alive = alive_at_start crashes config k in
    let lost = ref [] in
    List.iter
      (fun src ->
        List.iter
          (fun dst ->
            if not (Pid.equal src dst) then
              let crashing = List.exists (Pid.equal src) victims in
              let may_lose = k < gst || crashing in
              if may_lose && Rng.int rng 100 < loss_rate_percent then
                lost := (src, dst) :: !lost)
          (Pid.all ~n))
      alive;
    { Sim.Schedule.crashes = victims; lost = !lost; delayed = [] }
  in
  Sim.Schedule.make ~model:Sim.Model.Dls_basic ~gst:(Round.of_int gst)
    (List.map plan_for (Listx.range 1 horizon))

let synchronous_after rng config ~k ~f ?(stall_low_ids = true) () =
  if f > Config.t config then
    invalid_arg "Random_runs.synchronous_after: f exceeds t";
  let n = Config.n config in
  (* Crashes: the f lowest ids, silently, one per round from k+1 on. *)
  let crashes =
    List.map (fun i -> (Pid.of_int i, k + i)) (Listx.range 1 f)
  in
  let pick_withheld rng budget candidates =
    if budget <= 0 then []
    else if stall_low_ids then Listx.take budget candidates
    else Rng.sample rng budget candidates
  in
  let plan_for round =
    if round <= k then
      async_round rng config ~crashes ~k:round ~gst:(k + 1) ~max_delay:2
        ~pick_withheld
    else
      match crashing_at crashes round with
      | [] -> Sim.Schedule.empty_plan
      | victims ->
          {
            Sim.Schedule.crashes = victims;
            lost =
              List.concat_map
                (fun v ->
                  List.map (fun dst -> (v, dst)) (Pid.others ~n v))
                victims;
            delayed = [];
          }
  in
  Sim.Schedule.make ~model:Sim.Model.Es
    ~gst:(Round.of_int (k + 1))
    (List.map plan_for (Listx.range 1 (k + f + 1)))
