(** Mutation-based schedule generators for fuzz campaigns.

    Where {!Random_runs} draws fresh schedules from scratch, this module
    perturbs an existing one: add, move or drop a crash, flip a lost message
    into a delayed one (or back), add or drop individual fate entries, shift
    the gst, declare or retire an omission-faulty process, or drop one more
    message an omitter declaration licenses. Mutating a known-interesting seed schedule (a near-violation, a
    previously shrunk counterexample) explores its neighbourhood much more
    densely than independent sampling can.

    Operators edit the plan list blindly and {!mutate} re-validates the
    result with {!Sim.Schedule.validate}, retrying with a fresh operator
    draw on failure — the validator stays the single source of truth for
    model legality. All randomness comes from the caller's {!Kernel.Rng.t},
    so campaigns remain reproducible from one seed. *)

open Kernel

type op =
  | Add_crash  (** crash a currently-correct process in a random round *)
  | Drop_crash  (** remove a crash and its same-round fate entries *)
  | Move_crash  (** move a crash to a different round (entries dropped) *)
  | Flip_fate  (** turn one lost message into a delayed one, or back *)
  | Drop_loss
  | Drop_delay
  | Add_delay
  | Add_loss  (** lose one more message of a crashing sender *)
  | Shift_gst  (** move gst one round earlier or later *)
  | Add_omitter
      (** declare a correct process a send- or receive-omitter (kept only
          when the schedule's budget — or [t] — admits it) *)
  | Drop_omitter  (** retire a declaration and the losses it licensed *)
  | Add_omit_loss  (** lose one more message a declaration licenses *)

val all_ops : op list
val pp_op : Format.formatter -> op -> unit

val apply_op :
  Rng.t -> Config.t -> op -> Sim.Schedule.t -> Sim.Schedule.t option
(** One blind application of the operator; [None] when the operator does
    not apply (e.g. [Drop_crash] on a crash-free schedule). The result is
    {e not} validated. *)

val mutate : ?tries:int -> Rng.t -> Config.t -> Sim.Schedule.t -> Sim.Schedule.t
(** Draw operators until one yields a schedule accepted by
    {!Sim.Schedule.validate} (at most [tries] draws, default 16); returns
    the input schedule unchanged when every draw fails, so the result is
    always valid if the input was. *)

val generator :
  ?ops_per_run:int -> base:Sim.Schedule.t -> Config.t -> Rng.t -> Sim.Schedule.t
(** A {!Random_runs}-style generator: applies 1 to [ops_per_run] (default 3)
    successful mutations to [base]. *)
