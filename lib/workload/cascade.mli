(** Deterministic worst-case synchronous schedules.

    The classic adversary against flooding algorithms crashes one process per
    round, each time letting the victim's last message reach exactly one
    surviving process, so that one value stays known to a single process for
    [t] rounds. Variants of the same cascade hit the coordinator/leader
    rotation of the phase-based algorithms. All schedules produced here are
    synchronous (gst = 1) and validate against the ES model. *)

open Kernel

val chain : Config.t -> Sim.Schedule.t
(** Round [k] (for [k = 1..t]): [p_k] crashes while its round-[k] message
    reaches only [p_{k+1}]; every other copy is lost. This forces FloodSet /
    FloodSetWS to their [t + 1] worst case and exhibits the longest
    information chain a synchronous run can hide. *)

val silent_crashes : Config.t -> rounds:Round.t list -> Sim.Schedule.t
(** One crash per given round, lowest-id processes first, each crashing
    before sending anything (all copies lost). *)

val coordinator_killer : Config.t -> phase_rounds:int -> Sim.Schedule.t
(** Against rotating-coordinator algorithms whose phase [phi] is led by
    [p_{phi+1}] and spans [phase_rounds] rounds: crash the coordinator of
    each of the first [t] phases in the phase's first round, before it sends
    anything. With [phase_rounds = 2] this drives Hurfin–Raynal to [2t + 2];
    with [4], CT-<>S to [4t + 4]. *)

val leader_killer : Config.t -> f:int -> stride:int -> start:Round.t -> Sim.Schedule.t
(** Crash the lowest-id process still alive at rounds [start], [start +
    stride], ... ([f] crashes in total), each before sending. Aimed at
    min-id leader oracles: [stride = 1] stalls [A_{f+2}] one round per
    crash, [stride = 2] stalls AMR one two-round phase per crash. *)

val minority_keeper : Config.t -> f:int -> Sim.Schedule.t
(** The adversary that holds [A_{f+2}] to exactly [f + 2] rounds at
    [n = 3t + 1] (found by exhaustive serial search and kept as a
    deterministic witness): round 1 crashes [p_1] delivering the minority
    value to [p_2 .. p_{t+2}] — exactly [n - 2t] holders, the adoption
    threshold — and each later round [r] crashes [p_r] delivering only to
    [p_{r+1}], so a single process keeps seeing [n - 2t] copies of the
    minority value while everyone else has moved on; the estimates only
    merge one round after the crash budget runs out. Requires
    [1 <= f <= t]. *)

val split_then_minority : Config.t -> k:int -> f:int -> Sim.Schedule.t
(** The {!split_brain} asynchronous prefix (rounds [1..k]) followed by the
    {!minority_keeper} crash pattern (rounds [k+1 .. k+f]): drives
    [A_{f+2}] to decide at {e exactly} [k + f + 2] for every [k] and every
    [0 <= f <= t] at [n = 3t + 1] — the fast-eventual-decision bound of
    Lemma 15 is achieved, not just respected. *)

val split_brain : Config.t -> k:int -> f:int -> Sim.Schedule.t
(** The Section-6 adversary for [n = 3t + 1]: rounds [1..k] are asynchronous
    — only [p1]'s messages to the [2t] highest-id processes are delayed
    (until round [k+1]) — which provably keeps the estimates of the low-id
    block ([p1..p_{t+1}]) and the high-id block apart, so no quorum-counting
    algorithm with threshold [n - 2t] can decide before round [k]. From
    round [k + 1] the run is synchronous and [f] crashes occur: in round
    [k + i] process [p_i] crashes, its message reaching only the rest of the
    low block — each crash keeps the split alive for one more round. This is
    the workload that drives [A_{f+2}] towards its [k + f + 2] bound and
    AMR towards [k + 2f + 2]. *)

val all_named : Config.t -> (string * Sim.Schedule.t) list
(** The cascades above under standard parameters, labelled, for table E1. *)
