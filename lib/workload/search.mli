(** Worst-case search: drive an algorithm over a family of schedules and
    keep the run with the latest global decision (checking consensus
    properties along the way). *)

open Kernel

type outcome = {
  worst_round : int;  (** latest global decision round observed *)
  worst_schedule : Sim.Schedule.t option;
  runs : int;
  violations : (Sim.Schedule.t * Sim.Props.violation list) list;
      (** schedules whose runs broke a consensus property *)
}

val over :
  ?check:[ `Full | `Safety_only | `None ] ->
  ?jobs:int ->
  ?metrics:Obs.Metrics.t ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  Sim.Schedule.t Seq.t ->
  outcome
(** Run every schedule in the (finite) sequence. [`Full] (default) checks
    validity, agreement and termination; [`Safety_only] skips termination
    (for runs designed to stall an algorithm); [`None] records rounds
    only. When [metrics] is given, progress is reported into it: the
    [search.runs] and [search.violations] counters and the
    [search.decision_round] histogram.

    [jobs] (default 1) > 1 materialises the sequence and spreads it over
    that many domains ({!Kernel.Par}), merging shard outcomes in sequence
    order — the outcome (worst schedule, violation order included) is
    identical to the serial fold, and metrics are reported once at the end
    from the calling domain. *)

val random_synchronous :
  ?samples:int ->
  ?with_delays:bool ->
  ?metrics:Obs.Metrics.t ->
  seed:int ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  unit ->
  outcome
(** {!over} on [samples] (default 300) random synchronous schedules. *)

val random_es :
  ?samples:int ->
  ?gst:int ->
  ?metrics:Obs.Metrics.t ->
  seed:int ->
  algo:Sim.Algorithm.packed ->
  config:Config.t ->
  proposals:Value.t Pid.Map.t ->
  unit ->
  outcome
(** {!over} on random eventually-synchronous schedules (default gst 4). *)
