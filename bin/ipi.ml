(* ipi — "the inherent price of indulgence" command-line driver.

   Subcommands:
     ipi list                      algorithms and experiments
     ipi experiments [NAME ...]    run all (or the named) experiments
     ipi run ...                   run one algorithm on one schedule
     ipi sweep ...                 exhaustive serial-schedule sweep
     ipi attack ...                run the lower-bound attacks *)

open Kernel

let std = Format.std_formatter

(* ------------------------------------------------------------------ *)
(* Arguments shared by subcommands                                      *)

let algo_arg =
  let doc = "Algorithm label (see `ipi list`)." in
  Cmdliner.Arg.(
    value & opt string "A(t+2)" & info [ "a"; "algo" ] ~docv:"LABEL" ~doc)

let n_arg =
  Cmdliner.Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Processes.")

let t_arg =
  Cmdliner.Arg.(
    value & opt int 2 & info [ "t" ] ~docv:"T" ~doc:"Crash resilience bound.")

let seed_arg =
  Cmdliner.Arg.(
    value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let faults_arg =
  Cmdliner.Arg.(
    value
    & opt
        (enum
           [
             ("crash", Sim.Model.Crash_only);
             ("send-omit", Sim.Model.Send_omit_only);
             ("recv-omit", Sim.Model.Recv_omit_only);
             ("mixed", Sim.Model.Mixed);
           ])
        Sim.Model.Crash_only
    & info [ "faults" ] ~docv:"MENU"
        ~doc:
          "Adversary fault menu: crash (default), send-omit (faulty \
           processes drop outgoing messages without crashing), recv-omit \
           (drop incoming), or mixed (crashes and omissions under a split \
           budget). Omission menus split the resilience bound t into \
           t_crash + t_omit, keeping the soundness rule t_crash + t_omit \
           <= t.")

let omit_budget_arg =
  Cmdliner.Arg.(
    value & opt int 1
    & info [ "omit-budget" ] ~docv:"N"
        ~doc:
          "Omission budget t_omit for the non-crash fault menus (default \
           1, clamped to t); with --faults mixed the crash side keeps \
           t - t_omit.")

let lookup_algo label =
  match Expt.Registry.find label with
  | Some entry -> entry
  | None ->
      Format.eprintf "unknown algorithm %S; try `ipi list`@." label;
      exit 2

(* The deliberately broken fuzz fixtures are not consensus algorithms, so
   they live outside the registry; `run` and `fuzz` accept them anyway so a
   fuzz counterexample can be replayed against the algorithm that produced
   it. *)
let lookup_fuzz_fixture ?(raise_at = 2) label =
  match label with
  | "eager-floodset" -> Some Fuzz.Faulty.eager_floodset
  | "raising" -> Some (Fuzz.Faulty.raising ~at:raise_at)
  | "raising-init" -> Some Fuzz.Faulty.raising_init
  | _ -> None

(* ------------------------------------------------------------------ *)
(* ipi list                                                             *)

let list_cmd =
  let run () =
    Format.fprintf std "Algorithms:@.";
    List.iter
      (fun e ->
        Format.fprintf std "  %-14s %-10s %s@." e.Expt.Registry.label
          (Sim.Model.to_string e.Expt.Registry.model)
          e.Expt.Registry.reference)
      Expt.Registry.all;
    Format.fprintf std "@.Experiments:@.";
    List.iter
      (fun e ->
        Format.fprintf std "  %-5s %s@." e.Expt.Suite.name e.Expt.Suite.title)
      Expt.Suite.all
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "list" ~doc:"List algorithms and experiments.")
    Cmdliner.Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* ipi experiments                                                      *)

let experiments_cmd =
  let names_arg =
    Cmdliner.Arg.(
      value & pos_all string []
      & info [] ~docv:"NAME" ~doc:"Experiment ids (default: all).")
  in
  let run names =
    let selected =
      match names with
      | [] -> Expt.Suite.all
      | names ->
          List.map
            (fun name ->
              match Expt.Suite.find name with
              | Some e -> e
              | None ->
                  Format.eprintf "unknown experiment %S; try `ipi list`@." name;
                  exit 2)
            names
    in
    List.iter
      (fun e ->
        e.Expt.Suite.run std;
        Format.fprintf std "@.")
      selected
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "experiments"
       ~doc:"Regenerate the paper's tables and figures.")
    Cmdliner.Term.(const run $ names_arg)

(* ------------------------------------------------------------------ *)
(* ipi run                                                              *)

let read_file path =
  try
    let ic = open_in path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with Sys_error msg ->
    Format.eprintf "cannot read %s: %s@." path msg;
    exit 2

(* All machine-readable artifacts go through Obs.Artifact: the published
   path either holds the previous complete file or the new complete one,
   never a truncated prefix — even under SIGKILL or the chaos harness. *)
let write_file path write =
  try Obs.Artifact.write path write
  with Sys_error msg | Unix.Unix_error (_, _, msg) ->
    Format.eprintf "cannot write %s: %s@." path msg;
    exit 2

(* ------------------------------------------------------------------ *)
(* Progress/heartbeat wiring shared by sweep and fuzz                   *)

let progress_flag_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Live progress on stderr — items done, runs/s, dedup hit-rate, \
           ETA. A single rewriting line on a TTY, plain lines otherwise.")

let heartbeat_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "heartbeat" ] ~docv:"FILE"
        ~doc:
          "Write every progress snapshot to $(docv) as JSONL — a \
           machine-readable heartbeat for CI logs and dashboards.")

(* The meter plus a finalizer that emits the last (final=true) snapshot.
   Progress display never affects results — it only observes counts the
   drivers were already producing. The heartbeat JSONL is rewritten
   atomically on every emission: a reader (or `ipi heartbeat-check`) never
   sees a torn line, only complete snapshots up to some sequence number. *)
let make_progress ~label ~show ~heartbeat =
  if (not show) && heartbeat = None then (Obs.Progress.disabled, fun () -> ())
  else begin
    let hb_lines = Buffer.create 256 in
    let tty = show && Unix.isatty Unix.stderr in
    let emit snap =
      Option.iter
        (fun path ->
          Buffer.add_string hb_lines
            (Obs.Json.to_string (Obs.Progress.snapshot_to_json snap));
          Buffer.add_char hb_lines '\n';
          try Obs.Artifact.write_string path (Buffer.contents hb_lines)
          with Sys_error msg | Unix.Unix_error (_, _, msg) ->
            Format.eprintf "cannot write %s: %s@." path msg;
            exit 2)
        heartbeat;
      if show then
        let line = Obs.Progress.render snap in
        if tty then begin
          Printf.eprintf "\r\027[K%s%!" line;
          if snap.Obs.Progress.final then prerr_newline ()
        end
        else Printf.eprintf "%s\n%!" line
    in
    let t = Obs.Progress.create ~label ~emit () in
    (t, fun () -> Obs.Progress.finish t)
  end

let read_schedule_file path =
  let contents = read_file path in
  match Sim.Codec.decode contents with
  | Ok schedule -> schedule
  | Error msg ->
      Format.eprintf "cannot parse %s: %s@." path msg;
      exit 2

let schedule_of_name config ~seed ~gst = function
  | file when String.length file > 1 && file.[0] = '@' ->
      read_schedule_file (String.sub file 1 (String.length file - 1))
  | "quiet" -> Sim.Schedule.make ~model:Sim.Model.Es ~gst:Round.first []
  | "chain" -> Workload.Cascade.chain config
  | "coordkill2" -> Workload.Cascade.coordinator_killer config ~phase_rounds:2
  | "coordkill4" -> Workload.Cascade.coordinator_killer config ~phase_rounds:4
  | "witness" -> Mc.Attack.witness_schedule config
  | "solo" -> Mc.Attack.solo_split_schedule config
  | "random-sync" ->
      Workload.Random_runs.synchronous_with_delays (Rng.create ~seed) config ()
  | "random-es" ->
      Workload.Random_runs.eventually_synchronous (Rng.create ~seed) config
        ~gst ()
  | other ->
      Format.eprintf
        "unknown schedule %S (quiet|chain|coordkill2|coordkill4|witness|solo|random-sync|random-es)@."
        other;
      exit 2

let run_cmd =
  let schedule_arg =
    Cmdliner.Arg.(
      value & opt string "quiet"
      & info [ "s"; "schedule" ] ~docv:"SCHEDULE"
          ~doc:
            "quiet | chain | coordkill2 | coordkill4 | witness | solo | \
             random-sync | random-es")
  in
  let gst_arg =
    Cmdliner.Arg.(
      value & opt int 4
      & info [ "gst" ] ~docv:"GST" ~doc:"gst for random-es schedules.")
  in
  let diagram_arg =
    Cmdliner.Arg.(
      value & flag & info [ "d"; "diagram" ] ~doc:"Print the run diagram.")
  in
  let dump_arg =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "dump" ] ~docv:"FILE"
          ~doc:
            "Save the schedule to $(docv) in the text format `ipi run -s \
             @$(docv)` replays.")
  in
  let trace_file_arg =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write the run's structured event log to $(docv).")
  in
  let trace_format_arg =
    Cmdliner.Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
      & info [ "trace-format" ] ~docv:"FORMAT"
          ~doc:
            "Event-log format: jsonl (one event per line, replayable with \
             `ipi trace`) or chrome (trace_event JSON, viewable in \
             Perfetto).")
  in
  let metrics_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Count the run's events and print the metrics registry.")
  in
  let run label n t seed schedule_name gst diagram dump trace_file trace_format
      metrics =
    let config = Config.make ~n ~t in
    let algo =
      match lookup_fuzz_fixture label with
      | Some algo -> algo
      | None -> (lookup_algo label).Expt.Registry.algo
    in
    let schedule = schedule_of_name config ~seed ~gst schedule_name in
    (match Sim.Schedule.validate config schedule with
    | Ok () -> ()
    | Error e ->
        Format.eprintf "invalid schedule: %s@." e;
        exit 2);
    (match dump with
    | Some path ->
        write_file path (fun oc -> output_string oc (Sim.Codec.encode schedule));
        Format.fprintf std "schedule saved to %s@." path
    | None -> ());
    let mem_sink, drain =
      match trace_file with
      | Some _ ->
          let sink, drain = Obs.Sink.memory () in
          (sink, Some drain)
      | None -> (Obs.Sink.noop, None)
    in
    let registry = Obs.Metrics.create () in
    let sink =
      Obs.Sink.tee mem_sink
        (if metrics then Obs.Metrics.counting_sink registry else Obs.Sink.noop)
    in
    let prof = if metrics then Some (Obs.Prof.acc ()) else None in
    let trace =
      match
        Sim.Runner.run ~record:true ~sink ?prof algo config
          ~proposals:(Sim.Runner.distinct_proposals config)
          schedule
      with
      | trace -> trace
      | exception Sim.Engine.Step_error e ->
          Format.eprintf "algorithm crashed: %a@." Sim.Engine.pp_step_error e;
          exit 2
    in
    (* Traced runs also carry the §4 simulated failure-detector view. *)
    if Obs.Sink.enabled sink && trace.Sim.Trace.rounds_executed > 0 then
      ignore
        (Fd.Simulate.history ~sink config schedule
           ~rounds:trace.Sim.Trace.rounds_executed);
    Format.fprintf std "%a@." Sim.Trace.pp_summary trace;
    List.iter
      (fun v -> Format.fprintf std "VIOLATION: %a@." Sim.Props.pp_violation v)
      (Sim.Props.check trace);
    if diagram then Format.fprintf std "@.%a@." Sim.Trace.pp_diagram trace;
    (match (trace_file, drain) with
    | Some path, Some drain ->
        let events = drain () in
        write_file path (fun oc ->
            match trace_format with
            | `Jsonl -> Obs.Jsonl.to_channel oc events
            | `Chrome -> output_string oc (Obs.Chrome.to_string events));
        Format.fprintf std "event log (%d events) written to %s@."
          (List.length events) path
    | _ -> ());
    (match prof with
    | Some a -> Obs.Prof.flush a ~metrics:registry ~prefix:"sim" ~per:"round"
    | None -> ());
    if metrics then Format.fprintf std "@.metrics:@.%a@." Obs.Metrics.pp registry
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "run" ~doc:"Run one algorithm on one schedule.")
    Cmdliner.Term.(
      const run $ algo_arg $ n_arg $ t_arg $ seed_arg $ schedule_arg $ gst_arg
      $ diagram_arg $ dump_arg $ trace_file_arg $ trace_format_arg
      $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* ipi trace                                                            *)

let trace_cmd =
  let file_arg =
    Cmdliner.Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"A JSONL event log saved by `ipi run --trace`.")
  in
  let run path =
    match Obs.Jsonl.parse (read_file path) with
    | Error e ->
        Format.eprintf "cannot parse %s: %s@." path e;
        exit 2
    | Ok events -> (
        match Obs.Replay.of_events events with
        | Error e ->
            Format.eprintf "cannot replay %s: %s@." path e;
            exit 2
        | Ok run ->
            Format.fprintf std "%a@.@.%a@." Obs.Replay.pp_summary run
              Obs.Replay.pp_diagram run)
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "trace"
       ~doc:
         "Replay a saved JSONL event log into the run summary and ASCII \
          space/time diagram, without re-executing anything.")
    Cmdliner.Term.(const run $ file_arg)

(* ------------------------------------------------------------------ *)
(* ipi attack                                                           *)

let attack_cmd =
  let run label n t =
    let config = Config.make ~n ~t in
    let entry = lookup_algo label in
    let report = Mc.Attack.run_witness entry.Expt.Registry.algo config in
    Format.fprintf std "%a@.@." Mc.Attack.pp_report report;
    Format.fprintf std "%a@." Sim.Trace.pp_diagram report.Mc.Attack.trace;
    if report.Mc.Attack.violations = [] then
      Format.fprintf std "@.%s survives the lower-bound construction.@." label
    else exit 1
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "attack"
       ~doc:"Run the proof-guided ES attack against an algorithm.")
    Cmdliner.Term.(const run $ algo_arg $ n_arg $ t_arg)

(* ------------------------------------------------------------------ *)
(* ipi sweep / sweep-worker — shared shape flags and crash-safety
   plumbing                                                             *)

let binary_arg =
  Cmdliner.Arg.(
    value & flag
    & info [ "binary" ]
        ~doc:
          "Sweep all 2^n binary proposal assignments instead of the \
           single distinct-values assignment.")

let policy_arg =
  Cmdliner.Arg.(
    value
    & opt
        (enum
           [
             ("prefixes", Mc.Serial.Prefixes);
             ("all-subsets", Mc.Serial.All_subsets);
           ])
        Mc.Serial.Prefixes
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "Receiver sets per crash: prefixes (polynomial branching, \
           default) or all-subsets (exact, exponential).")

let horizon_arg =
  Cmdliner.Arg.(
    value
    & opt (some int) None
    & info [ "horizon" ] ~docv:"ROUNDS"
        ~doc:"Crash horizon in rounds (default t + 2).")

let table_cap_arg =
  Cmdliner.Arg.(
    value
    & opt (some int) None
    & info [ "table-cap" ] ~docv:"N"
        ~doc:
          "Bound the dedup transposition table to $(docv) in-memory \
           entries; overflow entries go to --spill-dir when given, \
           otherwise the overflow is not memoized (aggregates are \
           bit-identical either way). --reduce dedup only.")

let spill_dir_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "spill-dir" ] ~docv:"DIR"
        ~doc:
          "Spill transposition entries over --table-cap to a temporary \
           file in $(docv), keeping memoization exact under a bounded \
           heap.")

let faults_flag = function
  | Sim.Model.Crash_only -> "crash"
  | Sim.Model.Send_omit_only -> "send-omit"
  | Sim.Model.Recv_omit_only -> "recv-omit"
  | Sim.Model.Mixed -> "mixed"

let policy_flag = function
  | Mc.Serial.Prefixes -> "prefixes"
  | Mc.Serial.All_subsets -> "all-subsets"

let dreduce_flag = function
  | Mc.Distrib.Rnone -> "none"
  | Mc.Distrib.Rdedup -> "dedup"

let distrib_spec ~algo ~config ~faults ~omit_budget ~policy ~horizon ~binary
    ~reduce ~table_cap ~spill_dir =
  {
    Mc.Distrib.faults;
    omit_budget = Some omit_budget;
    policy;
    horizon;
    algo;
    config;
    reduce;
    scope =
      (if binary then Mc.Distrib.Binary
       else Mc.Distrib.Fixed (Sim.Runner.distinct_proposals config));
    table_cap;
    spill_dir;
  }

(* The checkpoint's identity block: everything that shapes the task list
   or the per-task results. A snapshot resumes only a sweep with the same
   parameters (canonical JSON equality in Checkpoint.compatible). *)
let sweep_params ~label ~n ~t ~faults ~omit_budget ~horizon ~binary ~policy
    ~reduce =
  Obs.Json.Obj
    [
      ("kind", Obs.Json.String "sweep");
      ("algo", Obs.Json.String label);
      ("n", Obs.Json.Int n);
      ("t", Obs.Json.Int t);
      ("faults", Obs.Json.String (faults_flag faults));
      ("omit_budget", Obs.Json.Int omit_budget);
      ("policy", Obs.Json.String (policy_flag policy));
      ( "horizon",
        match horizon with Some h -> Obs.Json.Int h | None -> Obs.Json.Null );
      ("scope", Obs.Json.String (if binary then "binary" else "fixed"));
      ("reduce", Obs.Json.String (dreduce_flag reduce));
    ]

(* The supervised driver respawns workers as this exact invocation: the
   flags mirror the parent's sweep shape, so a worker computes the same
   tasks the parent would. *)
let sweep_worker_argv ~label ~n ~t ~faults ~omit_budget ~policy ~horizon
    ~binary ~reduce ~table_cap ~spill_dir =
  [
    Sys.executable_name;
    "sweep-worker";
    "-a";
    label;
    "-n";
    string_of_int n;
    "-t";
    string_of_int t;
    "--faults";
    faults_flag faults;
    "--omit-budget";
    string_of_int omit_budget;
    "--policy";
    policy_flag policy;
    "--reduce";
    dreduce_flag reduce;
  ]
  @ (match horizon with Some h -> [ "--horizon"; string_of_int h ] | None -> [])
  @ (if binary then [ "--binary" ] else [])
  @ (match table_cap with
    | Some c -> [ "--table-cap"; string_of_int c ]
    | None -> [])
  @ match spill_dir with Some d -> [ "--spill-dir"; d ] | None -> []

(* ------------------------------------------------------------------ *)
(* ipi sweep                                                            *)

let sweep_cmd =
  let jobs_arg =
    Cmdliner.Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the sweep; 0 means one per recommended \
             core. The result is bit-identical to --jobs 1.")
  in
  let mode_arg =
    Cmdliner.Arg.(
      value
      & opt (enum [ ("serial", `Serial); ("incremental", `Incremental) ])
          `Incremental
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "serial re-simulates every schedule from round 1 (the \
             baseline); incremental (default) shares schedule prefixes. \
             Ignored when --jobs > 1 (parallel sweeps are always \
             incremental).")
  in
  let reduce_arg =
    Cmdliner.Arg.(
      value
      & opt
          (enum [ ("none", `None); ("dedup", `Dedup); ("dedup+sym", `Sym) ])
          `None
      & info [ "reduce" ] ~docv:"RED"
          ~doc:
            "State-space reduction: none (default), dedup (transposition \
             table over canonical state fingerprints; bit-identical \
             verdicts), or dedup+sym (additionally collapse --binary \
             assignments to the n+1 proposal-count orbits when the \
             algorithm is symmetric; exact aggregates, one witness per \
             orbit). Reductions imply incremental mode.")
  in
  let metrics_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the sweep's metrics registry, including the \
             allocation-probe histograms (mc.minor_words_per_round — the \
             checker-core rate, one interval per arena DFS round over the \
             distinct work — and mc.minor_words_per_sweep) and — with \
             --jobs > 1 — the par.* worker-utilization gauges.")
  in
  let trace_file_arg =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the sweep's profiling spans (sweep > shard > run \
             nesting, with per-span GC deltas) to $(docv).")
  in
  let trace_format_arg =
    Cmdliner.Arg.(
      value
      & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
      & info [ "trace-format" ] ~docv:"FORMAT"
          ~doc:
            "Span-trace format: chrome (trace_event JSON, viewable in \
             Perfetto; shards appear as tracks) or jsonl (one span per \
             line).")
  in
  let budget_arg =
    Cmdliner.Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget for the sweep. On expiry the sweep stops at \
             the next run boundary and reports the partial result \
             (explored runs and everything accounted so far), exiting 3 \
             instead of 0; violations already found still exit 1.")
  in
  let checkpoint_arg =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Snapshot completed shards to $(docv) (atomic tmp+rename) \
             every --checkpoint-every shards and once more on exit — \
             normal, SIGINT/SIGTERM, or --budget expiry — so an \
             interrupted sweep resumes with --resume $(docv).")
  in
  let checkpoint_every_arg =
    Cmdliner.Arg.(
      value & opt int 8
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Shards between periodic checkpoint snapshots (default 8).")
  in
  let resume_arg =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Seed completed shards from a checkpoint written by \
             --checkpoint; only the pending shards are recomputed, and the \
             final aggregates are bit-identical to an undisturbed sweep. \
             The snapshot must describe the same sweep parameters.")
  in
  let workers_arg =
    Cmdliner.Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Shard the sweep across $(docv) supervised worker processes \
             (`ipi sweep-worker`) with heartbeats, per-shard timeouts, \
             bounded retry and work reassignment on worker death; the \
             merged aggregates are bit-identical to the serial sweep for \
             any worker count. 0 or 1 keeps the sweep in-process.")
  in
  let chaos_arg =
    Cmdliner.Arg.(
      value
      & opt
          (some
             (enum
                [
                  ("kill", Mc.Supervise.Kill);
                  ("stall", Mc.Supervise.Stall);
                  ("slow", Mc.Supervise.Slow);
                ]))
          None
      & info [ "chaos" ] ~docv:"MODE"
          ~doc:
            "Inject seeded faults into the --workers pool to exercise the \
             supervisor: kill (SIGKILL a worker mid-shard), stall \
             (SIGSTOP; the chunk timeout must rescue it) or slow (SIGSTOP \
             then SIGCONT). The fault budget is bounded, so a chaos-ridden \
             sweep still completes — bit-identical to an undisturbed one.")
  in
  let chaos_seed_arg =
    Cmdliner.Arg.(
      value & opt int 1
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:"Seed for the --chaos fault injector (default 1).")
  in
  let chunk_timeout_arg =
    Cmdliner.Arg.(
      value & opt float 60.
      & info [ "chunk-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Per-shard deadline under --workers: a worker silent past it \
             is killed and its shard reassigned (default 60).")
  in
  let run label n t faults omit_budget jobs mode binary policy horizon reduce
      budget_s checkpoint checkpoint_every resume_path workers chaos_mode
      chaos_seed chunk_timeout table_cap spill_dir print_metrics show_progress
      heartbeat trace_file trace_format =
    let config = Config.make ~n ~t in
    let entry = lookup_algo label in
    let algo = entry.Expt.Registry.algo in
    let jobs = if jobs = 0 then Par.default_jobs () else jobs in
    let deadline = Option.map (fun b -> Unix.gettimeofday () +. b) budget_s in
    let registry = Obs.Metrics.create () in
    let metrics = registry in
    let progress, finish_progress =
      make_progress ~label:"sweep" ~show:show_progress ~heartbeat
    in
    let distributed =
      workers > 1 || checkpoint <> None || resume_path <> None
      || chaos_mode <> None || table_cap <> None || spill_dir <> None
    in
    if distributed then begin
      (* The crash-safe drivers: checkpointed in-process execution, or a
         supervised multi-process pool. Both shard at the same granularity
         as the domain-parallel driver and merge in task order, so the
         aggregates are bit-identical to the plain serial sweep. *)
      let reduce =
        match reduce with
        | `None -> Mc.Distrib.Rnone
        | `Dedup -> Mc.Distrib.Rdedup
        | `Sym ->
            Format.eprintf
              "dedup+sym sweeps are not distributed: drop --reduce \
               dedup+sym or the \
               --workers/--checkpoint/--resume/--chaos/--table-cap flags@.";
            exit 2
      in
      let spec =
        distrib_spec ~algo ~config ~faults ~omit_budget ~policy ~horizon
          ~binary ~reduce ~table_cap ~spill_dir
      in
      let params =
        sweep_params ~label ~n ~t ~faults ~omit_budget ~horizon ~binary
          ~policy ~reduce
      in
      let resume =
        Option.map
          (fun path ->
            match Mc.Checkpoint.load ~path with
            | Ok ck -> ck
            | Error e ->
                Format.eprintf "%a@." Mc.Checkpoint.pp_load_error e;
                exit 2)
          resume_path
      in
      let ckpt = Option.map (fun p -> (p, checkpoint_every)) checkpoint in
      (* SIGINT/SIGTERM request a stop; the driver finishes the shard
         boundary, flushes a final checkpoint, and we exit 3 (PARTIAL)
         below — the same path --budget expiry takes. *)
      let stop = ref false in
      List.iter
        (fun s ->
          try Sys.set_signal s (Sys.Signal_handle (fun _ -> stop := true))
          with Invalid_argument _ | Sys_error _ -> ())
        [ Sys.sigint; Sys.sigterm ];
      let should_stop () =
        !stop
        ||
        match deadline with
        | Some d -> Unix.gettimeofday () > d
        | None -> false
      in
      let chaos =
        Option.map
          (fun mode -> Mc.Supervise.default_chaos mode ~seed:chaos_seed)
          chaos_mode
      in
      let outcome =
        if workers > 1 then
          Mc.Distrib.run_supervised ?resume ?checkpoint:ckpt ~should_stop
            ?chaos ~chunk_timeout ~progress ~workers
            ~worker_argv:
              (sweep_worker_argv ~label ~n ~t ~faults ~omit_budget ~policy
                 ~horizon ~binary ~reduce ~table_cap ~spill_dir)
            ~params spec
        else
          Mc.Distrib.run_serial ?resume ?checkpoint:ckpt ~should_stop
            ?deadline ~progress ~params spec
      in
      finish_progress ();
      match outcome with
      | Error msg ->
          Format.eprintf "%s@." msg;
          exit 2
      | Ok r ->
          let result = r.Mc.Distrib.result in
          Format.fprintf std "%a@." Mc.Exhaustive.pp_result result;
          (match r.Mc.Distrib.stats with
          | Some s -> Format.fprintf std "reduction: %a@." Mc.Dedup.pp_stats s
          | None -> ());
          (match result.Mc.Exhaustive.max_witness with
          | Some choices ->
              Format.fprintf std "worst run: %a@."
                (Format.pp_print_list
                   ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
                   Mc.Serial.pp_choice)
                choices
          | None -> ());
          (match r.Mc.Distrib.sup_metrics with
          | Some m ->
              Format.fprintf std "supervisor: %a@." Mc.Supervise.pp_metrics m
          | None -> ());
          (match checkpoint with
          | Some path ->
              Format.fprintf std "checkpoint (%d/%d shards) written to %s@."
                (List.length r.Mc.Distrib.completed)
                r.Mc.Distrib.total_tasks path
          | None -> ());
          if result.Mc.Exhaustive.violations <> [] then exit 1;
          if r.Mc.Distrib.partial || result.Mc.Exhaustive.expired then exit 3
    end
    else begin
    let spans =
      match trace_file with
      | Some _ -> Obs.Span.recorder ()
      | None -> Obs.Span.disabled
    in
    (* Two probe granularities: [round_acc] rides inside the sweeps (one
       interval per engine round over the distinct work), [sweep_acc]
       brackets the whole dispatch. *)
    let round_acc = if print_metrics then Some (Obs.Prof.acc ()) else None in
    let sweep_acc = if print_metrics then Some (Obs.Prof.acc ()) else None in
    let dedup_stats = ref None in
    let reduced r (s : Mc.Dedup.stats) =
      dedup_stats := Some s;
      r
    in
    let prof = round_acc in
    let dispatch () =
      if binary then
        match reduce with
        | `Sym ->
            let r, s =
              if jobs > 1 then
                Mc.Parallel.sweep_binary_sym ~faults ~omit_budget ?deadline
                  ~policy ~metrics ?prof ~spans ~progress ~jobs ?horizon
                  ~algo ~config ()
              else
                Mc.Symmetry.sweep_binary ~faults ~omit_budget ?deadline
                  ~policy ~metrics ?horizon ?prof ~spans ~progress ~algo
                  ~config ()
            in
            reduced r s
        | `Dedup ->
            let r, s =
              if jobs > 1 then
                Mc.Parallel.sweep_binary_dedup ~faults ~omit_budget ?deadline
                  ~policy ~metrics ?prof ~spans ~progress ~jobs ?horizon
                  ~algo ~config ()
              else
                Mc.Dedup.sweep_binary ~faults ~omit_budget ?deadline ~policy
                  ~metrics ?horizon ?prof ~spans ~progress ~algo ~config ()
            in
            reduced r s
        | `None ->
            if jobs > 1 then
              Mc.Parallel.sweep_binary ~faults ~omit_budget ?deadline ~policy
                ~metrics ?prof ~spans ~progress ~jobs ?horizon ~algo ~config
                ()
            else if mode = `Incremental then
              Mc.Exhaustive.sweep_binary_incremental ~faults ~omit_budget
                ?deadline ~policy ~metrics ?horizon ?prof ~spans ~progress
                ~algo ~config ()
            else
              Mc.Exhaustive.sweep_binary ~faults ~omit_budget ?deadline
                ~policy ~metrics ?horizon ~algo ~config ()
      else begin
        let proposals = Sim.Runner.distinct_proposals config in
        match reduce with
        | `Dedup | `Sym ->
            (* Symmetry reduces proposal assignments, so on a single fixed
               assignment dedup+sym degrades to dedup. *)
            let r, s =
              if jobs > 1 then
                Mc.Parallel.sweep_dedup ~faults ~omit_budget ?deadline
                  ~policy ~metrics ?prof ~spans ~progress ~jobs ?horizon
                  ~algo ~config ~proposals ()
              else
                Mc.Dedup.sweep ~faults ~omit_budget ?deadline ~policy
                  ~metrics ?horizon ?prof ~spans ~progress ~algo ~config
                  ~proposals ()
            in
            reduced r s
        | `None ->
            if jobs > 1 then
              Mc.Parallel.sweep ~faults ~omit_budget ?deadline ~policy
                ~metrics ?prof ~spans ~progress ~jobs ?horizon ~algo ~config
                ~proposals ()
            else if mode = `Incremental then
              Mc.Exhaustive.sweep_incremental ~faults ~omit_budget ?deadline
                ~policy ~metrics ?horizon ?prof ~spans ~progress ~algo
                ~config ~proposals ()
            else
              Mc.Exhaustive.sweep ~faults ~omit_budget ?deadline ~policy
                ~metrics ?horizon ~algo ~config ~proposals ()
      end
    in
    let result =
      match sweep_acc with
      | None -> dispatch ()
      | Some a -> Obs.Prof.measure a dispatch
    in
    finish_progress ();
    (match trace_file with
    | Some path ->
        let records = Obs.Span.records spans in
        write_file path (fun oc ->
            match trace_format with
            | `Chrome -> output_string oc (Obs.Chrome.spans_to_string records)
            | `Jsonl ->
                List.iter
                  (fun r ->
                    output_string oc
                      (Obs.Json.to_string (Obs.Span.record_to_json r));
                    output_char oc '\n')
                  records);
        Format.fprintf std "trace (%d spans) written to %s@."
          (List.length records) path
    | None -> ());
    (* The per-round histogram lands under [mc]: these are checker-core
       branch rounds (arena DFS steps over the distinct work), not plain
       simulator runs — [ipi run --metrics] keeps [sim] for those. *)
    (match round_acc with
    | Some a -> Obs.Prof.flush a ~metrics:registry ~prefix:"mc" ~per:"round"
    | None -> ());
    (match sweep_acc with
    | Some a -> Obs.Prof.flush a ~metrics:registry ~prefix:"mc" ~per:"sweep"
    | None -> ());
    Format.fprintf std "%a@." Mc.Exhaustive.pp_result result;
    (match !dedup_stats with
    | Some s -> Format.fprintf std "reduction: %a@." Mc.Dedup.pp_stats s
    | None -> ());
    (match result.Mc.Exhaustive.max_witness with
    | Some choices ->
        Format.fprintf std "worst run: %a@."
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
             Mc.Serial.pp_choice)
          choices
    | None -> ());
    if print_metrics then
      Format.fprintf std "@.metrics:@.%a@." Obs.Metrics.pp registry;
    if result.Mc.Exhaustive.violations <> [] then exit 1;
    if result.Mc.Exhaustive.expired then exit 3
    end
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "sweep"
       ~doc:
         "Exhaustively sweep every serial schedule up to a crash horizon \
          and report worst-case decision rounds and violations; non-zero \
          exit if any run violates consensus.")
    Cmdliner.Term.(
      const run $ algo_arg $ n_arg $ t_arg $ faults_arg $ omit_budget_arg
      $ jobs_arg $ mode_arg $ binary_arg $ policy_arg $ horizon_arg
      $ reduce_arg $ budget_arg $ checkpoint_arg $ checkpoint_every_arg
      $ resume_arg $ workers_arg $ chaos_arg $ chaos_seed_arg
      $ chunk_timeout_arg $ table_cap_arg $ spill_dir_arg $ metrics_arg
      $ progress_flag_arg $ heartbeat_arg $ trace_file_arg
      $ trace_format_arg)

(* ------------------------------------------------------------------ *)
(* ipi sweep-worker                                                     *)

let sweep_worker_cmd =
  let reduce_arg =
    Cmdliner.Arg.(
      value
      & opt
          (enum [ ("none", Mc.Distrib.Rnone); ("dedup", Mc.Distrib.Rdedup) ])
          Mc.Distrib.Rnone
      & info [ "reduce" ] ~docv:"RED"
          ~doc:"State-space reduction, as for `ipi sweep` (none or dedup).")
  in
  let run label n t faults omit_budget binary policy horizon reduce table_cap
      spill_dir =
    let config = Config.make ~n ~t in
    let algo = (lookup_algo label).Expt.Registry.algo in
    let spec =
      distrib_spec ~algo ~config ~faults ~omit_budget ~policy ~horizon ~binary
        ~reduce ~table_cap ~spill_dir
    in
    try Mc.Distrib.worker_loop spec stdin stdout
    with Failure msg ->
      Format.eprintf "%s@." msg;
      exit 2
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "sweep-worker"
       ~doc:
         "One supervised sweep shard executor: read task frames from \
          stdin, run each shard, write result frames to stdout. Spawned \
          by `ipi sweep --workers`; not meant for interactive use.")
    Cmdliner.Term.(
      const run $ algo_arg $ n_arg $ t_arg $ faults_arg $ omit_budget_arg
      $ binary_arg $ policy_arg $ horizon_arg $ reduce_arg $ table_cap_arg
      $ spill_dir_arg)

(* ------------------------------------------------------------------ *)
(* ipi heartbeat-check                                                  *)

let heartbeat_check_cmd =
  let file_arg =
    Cmdliner.Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"A heartbeat JSONL written by `--heartbeat $(docv)`.")
  in
  let max_age_arg =
    Cmdliner.Arg.(
      value & opt int 5
      & info [ "max-age-items" ] ~docv:"N"
          ~doc:
            "Staleness budget in work items: the file's age must not \
             exceed the time the writer needs for $(docv) items at its \
             own observed rate (default 5).")
  in
  let run path max_age_items =
    if max_age_items < 1 then begin
      Format.eprintf "--max-age-items must be >= 1@.";
      exit 2
    end;
    let lines =
      String.split_on_char '\n' (read_file path)
      |> List.filter (fun l -> String.trim l <> "")
    in
    let snaps =
      List.mapi
        (fun i line ->
          let parsed =
            match Obs.Json.of_string line with
            | Error _ as e -> e
            | Ok json -> Obs.Progress.snapshot_of_json json
          in
          match parsed with
          | Ok snap -> snap
          | Error e ->
              Format.eprintf "cannot parse %s line %d: %s@." path (i + 1) e;
              exit 2)
        lines
    in
    let mtime =
      match Unix.stat path with
      | st -> st.Unix.st_mtime
      | exception Unix.Unix_error (e, _, _) ->
          Format.eprintf "cannot stat %s: %s@." path (Unix.error_message e);
          exit 2
    in
    match
      Obs.Progress.check_heartbeat
        ~now:(Unix.gettimeofday ())
        ~mtime ~max_age_items snaps
    with
    | Ok () ->
        let last = List.nth snaps (List.length snaps - 1) in
        Format.fprintf std "heartbeat ok: seq %d, %d items%s@."
          last.Obs.Progress.seq last.Obs.Progress.items
          (if last.Obs.Progress.final then " (final)" else "")
    | Error msg ->
        Format.eprintf "%s@." msg;
        exit 1
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "heartbeat-check"
       ~doc:
         "Probe a --heartbeat JSONL file for liveness: sequence numbers \
          must strictly increase, and unless the stream is final the file \
          must have been written recently enough for the writer's own \
          observed rate. Exit 1 on a stale or malformed heartbeat.")
    Cmdliner.Term.(const run $ file_arg $ max_age_arg)

(* ------------------------------------------------------------------ *)
(* ipi fuzz                                                             *)

let fuzz_cmd =
  let runs_arg =
    Cmdliner.Arg.(
      value & opt int 200
      & info [ "r"; "runs" ] ~docv:"N" ~doc:"Schedules per campaign.")
  in
  let jobs_arg =
    Cmdliner.Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains; 0 means one per recommended core. The report \
             is bit-identical across values (unless --budget expires).")
  in
  let fuel_arg =
    Cmdliner.Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"ROUNDS"
          ~doc:
            "Round budget per run (default: the engine bound for each \
             schedule); exhausting it is reported as a budget-exhausted \
             outcome, not an error.")
  in
  let budget_arg =
    Cmdliner.Arg.(
      value
      & opt (some float) None
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:
            "Wall-clock budget; runs not started before it expires are \
             skipped (and reported as such).")
  in
  let shrink_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Minimize every finding to a 1-minimal schedule.")
  in
  let no_monitor_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "no-monitor" ]
          ~doc:
            "Disable the online monitor (violations then surface from the \
             post-hoc check only); for overhead measurements.")
  in
  let gen_arg =
    Cmdliner.Arg.(
      value
      & opt
          (enum
             [
               ("mix", `Mix);
               ("sync", `Sync);
               ("sync-delays", `Sync_delays);
               ("es", `Es);
               ("mutate", `Mutate);
             ])
          `Mix
      & info [ "gen" ] ~docv:"GEN"
          ~doc:
            "Schedule generator: mix (default), sync, sync-delays, es, or \
             mutate (perturb the --base schedule).")
  in
  let base_arg =
    Cmdliner.Arg.(
      value & opt string "chain"
      & info [ "base" ] ~docv:"SCHEDULE"
          ~doc:
            "Seed schedule for --gen mutate: any name `ipi run -s` \
             accepts, including $(i,@FILE).")
  in
  let gst_arg =
    Cmdliner.Arg.(
      value & opt int 3
      & info [ "gst" ] ~docv:"GST" ~doc:"gst for --gen es schedules.")
  in
  let raise_at_arg =
    Cmdliner.Arg.(
      value & opt int 2
      & info [ "raise-at" ] ~docv:"ROUND"
          ~doc:"Round from which the `raising` fixture algorithm raises.")
  in
  let metrics_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "metrics" ] ~doc:"Print the campaign's metrics registry.")
  in
  let out_arg =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Write the report (counterexamples as replayable Codec \
             strings) as JSON to $(docv).")
  in
  let expect_clean_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "expect-clean" ]
          ~doc:
            "Exit non-zero when the campaign has any finding. Without \
             this flag findings are data, not errors.")
  in
  let lookup_fuzz_algo label ~raise_at =
    match lookup_fuzz_fixture ~raise_at label with
    | Some algo -> algo
    | None -> (lookup_algo label).Expt.Registry.algo
  in
  let run label n t faults omit_budget seed runs jobs fuel budget_s shrink
      no_monitor gen_name base gst raise_at print_metrics out expect_clean
      show_progress heartbeat =
    let config = Config.make ~n ~t in
    let algo = lookup_fuzz_algo label ~raise_at in
    let jobs = if jobs = 0 then Par.default_jobs () else jobs in
    let gen : Fuzz.Campaign.gen =
      match (gen_name, faults) with
      (* Mutation campaigns keep their seed schedule whatever the menu —
         the omission operators explore the neighbourhood on their own. *)
      | `Mutate, _ ->
          Fuzz.Campaign.mutation_gen
            ~base:(schedule_of_name config ~seed ~gst base)
      | _, (Sim.Model.Send_omit_only | Sim.Model.Recv_omit_only | Sim.Model.Mixed)
        ->
          fun config rng ->
            Workload.Random_runs.with_omissions rng config ~faults ~omit_budget
              ()
      | `Mix, Sim.Model.Crash_only -> Fuzz.Campaign.default_gen
      | `Sync, Sim.Model.Crash_only ->
          fun config rng -> Workload.Random_runs.synchronous rng config ()
      | `Sync_delays, Sim.Model.Crash_only ->
          fun config rng ->
            Workload.Random_runs.synchronous_with_delays rng config ()
      | `Es, Sim.Model.Crash_only ->
          fun config rng ->
            Workload.Random_runs.eventually_synchronous rng config ~gst ()
    in
    let registry = Obs.Metrics.create () in
    let progress, finish_progress =
      make_progress ~label:"fuzz" ~show:show_progress ~heartbeat
    in
    let run_acc = if print_metrics then Some (Obs.Prof.acc ()) else None in
    let report =
      Fuzz.Campaign.run ~metrics:registry ~jobs ?fuel ?budget_s ~shrink
        ~monitor:(not no_monitor) ?prof:run_acc ~progress ~seed ~runs ~algo
        ~config
        ~proposals:(Sim.Runner.distinct_proposals config)
        ~gen ()
    in
    finish_progress ();
    (match run_acc with
    | Some a -> Obs.Prof.flush a ~metrics:registry ~prefix:"fuzz" ~per:"run"
    | None -> ());
    Format.fprintf std "%a@." Fuzz.Campaign.pp_report report;
    List.iter
      (fun f -> Format.fprintf std "@.%a@." Fuzz.Campaign.pp_finding f)
      report.Fuzz.Campaign.findings;
    (match out with
    | Some path ->
        let json =
          Fuzz.Campaign.to_json
            ~meta:
              [
                ("algo", Obs.Json.String label);
                ("n", Obs.Json.Int n);
                ("t", Obs.Json.Int t);
                ("seed", Obs.Json.Int seed);
                ("jobs", Obs.Json.Int jobs);
              ]
            report
        in
        write_file path (fun oc -> output_string oc (Obs.Json.to_string json));
        Format.fprintf std "@.report written to %s@." path
    | None -> ());
    if print_metrics then
      Format.fprintf std "@.metrics:@.%a@." Obs.Metrics.pp registry;
    if expect_clean && report.Fuzz.Campaign.findings <> [] then exit 1
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "fuzz"
       ~doc:
         "Run a seed-reproducible randomized campaign: generate schedules, \
          execute each under an online safety monitor with fault \
          containment and a round budget, optionally shrink every finding \
          to a 1-minimal counterexample.")
    Cmdliner.Term.(
      const run $ algo_arg $ n_arg $ t_arg $ faults_arg $ omit_budget_arg
      $ seed_arg $ runs_arg $ jobs_arg $ fuel_arg $ budget_arg $ shrink_arg
      $ no_monitor_arg $ gen_arg $ base_arg $ gst_arg $ raise_at_arg
      $ metrics_arg $ out_arg $ expect_clean_arg $ progress_flag_arg
      $ heartbeat_arg)

(* ------------------------------------------------------------------ *)
(* ipi figure1                                                          *)

let figure1_cmd =
  let run n t =
    let config = Config.make ~n ~t in
    let outcome = Mc.Figure1.against_floodset_ws config in
    Format.fprintf std "%a@." Mc.Figure1.pp_outcome outcome;
    Format.fprintf std "@.The five schedules:@.";
    List.iter
      (fun (name, s) ->
        Format.fprintf std "@.--- %s ---@.%s" name (Sim.Codec.encode s))
      [
        ("s1", outcome.Mc.Figure1.s1);
        ("s0", outcome.Mc.Figure1.s0);
        ("a2", outcome.Mc.Figure1.a2);
        ("a1", outcome.Mc.Figure1.a1);
        ("a0", outcome.Mc.Figure1.a0);
      ];
    if not (Mc.Figure1.all_hold outcome) then exit 1
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "figure1"
       ~doc:
         "Build and machine-check the five-run lower-bound construction of \
          the paper's Fig. 1 against FloodSetWS.")
    Cmdliner.Term.(const run $ n_arg $ t_arg)

(* ------------------------------------------------------------------ *)
(* ipi bench-diff                                                       *)

let bench_diff_cmd =
  let old_arg =
    Cmdliner.Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OLD"
          ~doc:
            "Baseline bench artifact — a BENCH_<date>.json or the \
             committed bench/BASELINE.json.")
  in
  let new_arg =
    Cmdliner.Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"Candidate bench artifact to compare.")
  in
  let threshold_arg =
    Cmdliner.Arg.(
      value & opt float 1.25
      & info [ "threshold" ] ~docv:"RATIO"
          ~doc:
            "Time-regression bar: a matched row regresses when new/old \
             mean exceeds $(docv) and the absolute delta clears the \
             2-sigma noise guard.")
  in
  let alloc_threshold_arg =
    Cmdliner.Arg.(
      value & opt float 1.10
      & info [ "alloc-threshold" ] ~docv:"RATIO"
          ~doc:
            "Allocation-regression bar on the minor-words ratio (rows \
             under 1000 words are never flagged).")
  in
  let warn_only_arg =
    Cmdliner.Arg.(
      value & flag
      & info [ "warn-only" ]
          ~doc:"Print the diff but exit 0 even on regressions.")
  in
  let out_arg =
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Also write the diff report as JSON to $(docv).")
  in
  let run old_path new_path threshold alloc_threshold warn_only out =
    let artifact path =
      match Stats.Bench_diff.artifact_of_string (read_file path) with
      | Ok a -> a
      | Error e ->
          Format.eprintf "cannot parse %s: %s@." path e;
          exit 2
    in
    let report =
      Stats.Bench_diff.diff ~threshold ~alloc_threshold
        ~old_:(artifact old_path) ~new_:(artifact new_path) ()
    in
    Format.fprintf std "%a@." Stats.Bench_diff.pp report;
    (match out with
    | Some path ->
        write_file path (fun oc ->
            output_string oc
              (Obs.Json.to_string (Stats.Bench_diff.to_json report));
            output_char oc '\n');
        Format.fprintf std "diff report written to %s@." path
    | None -> ());
    if (not warn_only) && Stats.Bench_diff.regressions report <> [] then
      exit 1
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "bench-diff"
       ~doc:
         "Diff two bench artifacts row by row (wall-clock and allocation \
          trajectories) and exit non-zero when any matched row regresses \
          past the thresholds.")
    Cmdliner.Term.(
      const run $ old_arg $ new_arg $ threshold_arg $ alloc_threshold_arg
      $ warn_only_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* ipi verify                                                           *)

let verify_cmd =
  let run () =
    Format.fprintf std "re-checking every headline claim of the paper...@.";
    if not (Expt.Verify.print std (Expt.Verify.run ())) then exit 1
  in
  Cmdliner.Cmd.v
    (Cmdliner.Cmd.info "verify"
       ~doc:
         "Re-run the reproduction certificate: every headline claim, \
          checked against fresh simulations; non-zero exit on any \
          mismatch.")
    Cmdliner.Term.(const run $ const ())

let () =
  let info =
    Cmdliner.Cmd.info "ipi" ~version:"1.0.0"
      ~doc:
        "The inherent price of indulgence (Dutta & Guerraoui, PODC 2002): \
         simulator, algorithms, lower-bound checker and experiments."
  in
  exit
    (Cmdliner.Cmd.eval
       (Cmdliner.Cmd.group info
          [
            list_cmd;
            experiments_cmd;
            run_cmd;
            trace_cmd;
            sweep_cmd;
            sweep_worker_cmd;
            heartbeat_check_cmd;
            fuzz_cmd;
            attack_cmd;
            figure1_cmd;
            bench_diff_cmd;
            verify_cmd;
          ]))
